//! Minimal TCP line-protocol front-end.
//!
//! One request per line, one reply per line:
//!
//! ```text
//! → 0=3 1=2.5..9.0            # col 0 = 3  AND  col 1 ∈ [2.5, 9.0]
//! ← 0.127341
//! → 1=*..0.5                  # open lower bound
//! ← 0.480000
//! → VERSION                   # admin: active model version
//! ← 2 wisdm-retrained
//! → STATS                     # admin: metrics dump, terminated by END
//! ← requests_total 42
//! ← …
//! ← END
//! → STATS PROM                # same, Prometheus text exposition
//! ← # TYPE iam_serve_requests_total counter
//! ← iam_serve_requests_total 42
//! ← …
//! ← END
//! → TRACKED 0=3 1=2.5..9.0    # estimate + canonical query id (for REPORT)
//! ← 9577216733948907093 0.127341
//! → REPORT 9577216733948907093 1250   # true count observed by the client
//! ← OK 1.373200                       # resolved q-error
//! → SQL SELECT COUNT(*) FROM t WHERE c0=3   # SQL subset (see crate::sql)
//! ← COUNT 1273.410000 SEL 0.127341 NROWS 10000
//! → QUIT                      # close the connection
//! ```
//!
//! Query grammar: whitespace-separated terms, each `col=value` (point
//! constraint) or `col=lo..hi` (closed range; either bound may be `*` for
//! unbounded). Repeated terms for one column intersect. Malformed lines get
//! `ERR <reason>` and the connection stays open.
//!
//! `TRACKED`/`REPORT` form the accuracy feedback loop: `TRACKED` answers
//! like a query line but prefixes the reply with the query's canonical id
//! (the same [`RangeQuery::canonical_key`] the cache and the sampler use),
//! and `REPORT <qid> <true_count>` resolves that id's sampled record into
//! a q-error observation (see `iam_obs::qerror`). A `REPORT` whose qid was
//! never sampled — tracking disabled, record evicted, or a bogus id —
//! answers `ERR no record for qid`, counted but never fatal.

use crate::error::ServeError;
use crate::service::Client;
use iam_data::{Interval, RangeQuery};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Longest accepted protocol line (bytes, newline included). Longer lines
/// get an `ERR line too long` reply and the connection is closed — a
/// stream that long is not a query, it is garbage or abuse, and draining
/// it line-less could buffer unbounded input.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// How often a blocked connection read wakes up to re-check the stop flag.
const CONN_POLL: Duration = Duration::from_millis(50);

/// Parse one protocol line into a [`RangeQuery`] over `ncols` columns.
pub fn parse_query(line: &str, ncols: usize) -> Result<RangeQuery, ServeError> {
    let bad = |m: String| ServeError::BadQuery(m);
    let mut rq = RangeQuery::unconstrained(ncols);
    let mut terms = 0usize;
    for term in line.split_whitespace() {
        terms += 1;
        if term == "*" {
            // wildcard term: no constraint (this is what `render_query`
            // emits for an unconstrained query, so it must re-parse)
            continue;
        }
        let (col_s, range_s) =
            term.split_once('=').ok_or_else(|| bad(format!("expected col=range, got {term:?}")))?;
        let col: usize = col_s.parse().map_err(|_| bad(format!("bad column index {col_s:?}")))?;
        if col >= ncols {
            return Err(bad(format!("column {col} out of range (model has {ncols})")));
        }
        let parse_bound = |s: &str, open: f64| -> Result<f64, ServeError> {
            if s == "*" {
                return Ok(open);
            }
            let v: f64 = s.parse().map_err(|_| bad(format!("bad number {s:?}")))?;
            if v.is_nan() {
                return Err(bad("NaN bound".into()));
            }
            Ok(v)
        };
        let iv = match range_s.split_once("..") {
            Some((lo_s, hi_s)) => Interval::closed(
                parse_bound(lo_s, f64::NEG_INFINITY)?,
                parse_bound(hi_s, f64::INFINITY)?,
            ),
            None if range_s == "*" => {
                return Err(bad("point constraint cannot be open (*)".into()))
            }
            None => Interval::point(parse_bound(range_s, 0.0)?),
        };
        rq.cols[col] = Some(match rq.cols[col].take() {
            Some(prev) => prev.intersect(&iv),
            None => iv,
        });
    }
    if terms == 0 {
        return Err(bad("empty query".into()));
    }
    Ok(rq)
}

/// Render a query back into the line-protocol grammar, constrained columns
/// in index order — the canonical predicate text stored in q-error
/// records. Every output re-parses via [`parse_query`] to an equivalent
/// query:
///
/// * infinite *range* bounds render as `*`, and an unconstrained query
///   renders as the bare wildcard `*` (which `parse_query` accepts);
/// * a degenerate point at `±∞` renders as the literal `col=inf` /
///   `col=-inf` rather than the unparseable `col=*`;
/// * an *empty* interval (post-`intersect`, or emptied by strictness
///   flags) renders as the canonical empty range `col=inf..-inf`, which
///   re-parses to an interval that is again empty.
///
/// (Strictness flags, which the text grammar cannot express, are carried
/// by the canonical key, not the text: a re-parse preserves emptiness and
/// endpoint values, not strictness bits.)
pub fn render_query(rq: &RangeQuery) -> String {
    let mut out = String::new();
    let fmt_bound = |v: f64| {
        if v.is_infinite() {
            "*".to_string()
        } else {
            format!("{v}")
        }
    };
    for (col, iv) in rq.cols.iter().enumerate() {
        let Some(iv) = iv else { continue };
        if !out.is_empty() {
            out.push(' ');
        }
        if iv.is_empty() {
            out.push_str(&format!("{col}=inf..-inf"));
        } else if iv.lo == iv.hi {
            // `{}` prints f64s shortest-round-trip (incl. `inf`/`-inf`),
            // and `parse_query` accepts all of those as point values
            out.push_str(&format!("{col}={}", iv.lo));
        } else {
            out.push_str(&format!("{col}={}..{}", fmt_bound(iv.lo), fmt_bound(iv.hi)));
        }
    }
    if out.is_empty() {
        out.push('*');
    }
    out
}

/// A running TCP front-end. [`TcpFrontend::stop`] closes the listener
/// **and drains the connection handlers**: every handler polls the stop
/// flag between reads (via a socket read timeout), finishes the line it is
/// on, and exits; `stop` joins them all, so tests never leak threads and
/// rebinding the port cannot flake on address reuse (bind with port 0 in
/// tests regardless).
pub struct TcpFrontend {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl TcpFrontend {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `client` over it.
    pub fn spawn<A: ToSocketAddrs>(client: Client, addr: A) -> io::Result<TcpFrontend> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let (stop, conns) = (Arc::clone(&stop), Arc::clone(&conns));
            std::thread::Builder::new()
                .name("iam-serve-accept".into())
                .spawn(move || accept_loop(listener, client, &stop, &conns))?
        };
        Ok(TcpFrontend { addr, stop, accept_thread, conns })
    }

    /// Close the listener, then join the accept loop and every connection
    /// handler thread (each notices the stop flag within `CONN_POLL`).
    pub fn stop(self) {
        self.stop.store(true, Relaxed);
        let _ = self.accept_thread.join();
        let handles: Vec<_> = {
            let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            conns.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    client: Client,
    stop: &Arc<AtomicBool>,
    conns: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = client.clone();
                let stop = Arc::clone(stop);
                let handle =
                    std::thread::Builder::new().name("iam-serve-conn".into()).spawn(move || {
                        let _ = handle_connection(stream, &client, &stop);
                    });
                if let Ok(h) = handle {
                    conns.lock().unwrap_or_else(|p| p.into_inner()).push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Read one `\n`-terminated line into `line` (cleared first), tolerating
/// read timeouts so the handler can notice `stop` while idle; partially
/// read bytes accumulate across retries. Returns `Ok(false)` on clean
/// close, stop, or an over-long line (after replying `ERR`).
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    out: &mut BufWriter<TcpStream>,
    stop: &AtomicBool,
) -> io::Result<bool> {
    line.clear();
    loop {
        match reader.read_until(b'\n', line) {
            Ok(0) => return Ok(false), // peer closed
            Ok(_) if line.last() == Some(&b'\n') => return Ok(true),
            Ok(_) => continue, // more to come (read_until hit buffer edge)
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if stop.load(Relaxed) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        if line.len() > MAX_LINE_BYTES {
            out.write_all(b"ERR line too long\n")?;
            out.flush()?;
            return Ok(false);
        }
    }
}

fn handle_connection(stream: TcpStream, client: &Client, stop: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(CONN_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = BufWriter::new(stream);
    let mut line = Vec::new();
    while read_line_bounded(&mut reader, &mut line, &mut out, stop)? {
        let trimmed = String::from_utf8_lossy(&line);
        let trimmed = trimmed.trim();
        if trimmed.is_empty() {
            continue;
        }
        match trimmed {
            "QUIT" => break,
            "STATS" => {
                out.write_all(client.metrics().render().as_bytes())?;
                out.write_all(b"END\n")?;
            }
            "STATS PROM" => {
                out.write_all(client.metrics_prometheus().as_bytes())?;
                out.write_all(b"END\n")?;
            }
            "VERSION" => {
                let (id, label) = client.current_version();
                writeln!(out, "{id} {label}")?;
            }
            cmd if cmd.starts_with("SQL ") || cmd == "SQL" => {
                let stmt = cmd.strip_prefix("SQL").unwrap_or("").trim();
                match crate::sql::execute_sql(stmt, client) {
                    Ok(body) => writeln!(out, "{body}")?,
                    Err(e) => writeln!(out, "ERR {e}")?,
                }
            }
            cmd if cmd.starts_with("TRACKED ") || cmd == "TRACKED" => {
                let query = cmd.strip_prefix("TRACKED").unwrap_or("").trim();
                match parse_query(query, client.ncols()) {
                    Ok(rq) => match client.estimate(&rq) {
                        Ok(sel) => writeln!(out, "{} {sel:.6}", rq.canonical_key())?,
                        Err(e) => writeln!(out, "ERR {e}")?,
                    },
                    Err(e) => writeln!(out, "ERR {e}")?,
                }
            }
            cmd if cmd.starts_with("REPORT ") => {
                let mut parts = cmd["REPORT ".len()..].split_whitespace();
                let parsed = match (parts.next(), parts.next(), parts.next()) {
                    (Some(qid), Some(count), None) => {
                        qid.parse::<u64>().ok().zip(count.parse::<u64>().ok())
                    }
                    _ => None,
                };
                match parsed {
                    Some((qid, true_count)) => match client.report_true_count(qid, true_count) {
                        Some(q) => writeln!(out, "OK {q:.6}")?,
                        None => writeln!(out, "ERR no record for qid")?,
                    },
                    None => writeln!(out, "ERR usage: REPORT <qid> <true_count>")?,
                }
            }
            query => match parse_query(query, client.ncols()).and_then(|rq| client.estimate(&rq)) {
                Ok(sel) => writeln!(out, "{sel:.6}")?,
                Err(e) => writeln!(out, "ERR {e}")?,
            },
        }
        out.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_points_and_ranges() {
        let rq = parse_query("0=3 1=2.5..9", 3).unwrap();
        assert_eq!(rq.cols[0], Some(Interval::point(3.0)));
        assert_eq!(rq.cols[1], Some(Interval::closed(2.5, 9.0)));
        assert_eq!(rq.cols[2], None);
    }

    #[test]
    fn open_bounds_via_star() {
        let rq = parse_query("1=*..0.5 0=-2..*", 2).unwrap();
        let iv1 = rq.cols[1].unwrap();
        assert_eq!(iv1.lo, f64::NEG_INFINITY);
        assert_eq!(iv1.hi, 0.5);
        let iv0 = rq.cols[0].unwrap();
        assert_eq!(iv0.lo, -2.0);
        assert_eq!(iv0.hi, f64::INFINITY);
    }

    #[test]
    fn repeated_terms_intersect() {
        let rq = parse_query("0=1..10 0=5..20", 1).unwrap();
        assert_eq!(rq.cols[0], Some(Interval::closed(5.0, 10.0)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["nonsense", "0:3", "x=1", "0=a..b", "5=1..2", "", "0=*"] {
            assert!(parse_query(bad, 2).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn render_query_round_trips_through_parse() {
        for line in ["0=3 1=2.5..9", "1=*..0.5", "0=-2..*", "0=1.25"] {
            let rq = parse_query(line, 3).unwrap();
            let rendered = render_query(&rq);
            let back = parse_query(&rendered, 3).unwrap();
            assert_eq!(back.canonical_key(), rq.canonical_key(), "{line} → {rendered}");
        }
        assert_eq!(render_query(&RangeQuery::unconstrained(2)), "*");
    }

    #[test]
    fn bare_wildcard_parses_unconstrained() {
        let rq = parse_query("*", 2).unwrap();
        assert!(rq.cols.iter().all(|c| c.is_none()));
        let back = parse_query(&render_query(&RangeQuery::unconstrained(2)), 2).unwrap();
        assert_eq!(back.canonical_key(), rq.canonical_key());
    }

    #[test]
    fn render_handles_degenerate_and_empty_intervals() {
        // degenerate points at ±∞ render as literals, not the unparseable `col=*`
        let mut rq = RangeQuery::unconstrained(2);
        rq.cols[0] = Some(Interval::point(f64::INFINITY));
        rq.cols[1] = Some(Interval::point(f64::NEG_INFINITY));
        let r = render_query(&rq);
        assert_eq!(r, "0=inf 1=-inf");
        let back = parse_query(&r, 2).unwrap();
        assert_eq!(back.canonical_key(), rq.canonical_key());

        // an empty interval renders as the canonical empty range and
        // re-parses to an interval that is again empty
        let mut rq = RangeQuery::unconstrained(1);
        rq.cols[0] = Some(Interval::closed(5.0, 3.0));
        let r = render_query(&rq);
        assert_eq!(r, "0=inf..-inf");
        assert!(parse_query(&r, 1).unwrap().cols[0].unwrap().is_empty());

        // strictness-emptied [v, v) must not render as a satisfiable point
        let mut rq = RangeQuery::unconstrained(1);
        rq.cols[0] = Some(Interval { lo: 2.0, hi: 2.0, lo_strict: false, hi_strict: true });
        assert!(parse_query(&render_query(&rq), 1).unwrap().cols[0].unwrap().is_empty());
    }

    #[test]
    fn canonical_keys_match_construction_route() {
        // a parsed query must cache-key identically to the same query built
        // programmatically
        let parsed = parse_query("0=3 1=2.5..9", 2).unwrap();
        let mut built = RangeQuery::unconstrained(2);
        built.cols[0] = Some(Interval::point(3.0));
        built.cols[1] = Some(Interval::closed(2.5, 9.0));
        assert_eq!(parsed.canonical_key(), built.canonical_key());
    }
}
