//! Minimal TCP line-protocol front-end.
//!
//! One request per line, one reply per line:
//!
//! ```text
//! → 0=3 1=2.5..9.0            # col 0 = 3  AND  col 1 ∈ [2.5, 9.0]
//! ← 0.127341
//! → 1=*..0.5                  # open lower bound
//! ← 0.480000
//! → VERSION                   # admin: active model version
//! ← 2 wisdm-retrained
//! → STATS                     # admin: metrics dump, terminated by END
//! ← requests_total 42
//! ← …
//! ← END
//! → STATS PROM                # same, Prometheus text exposition
//! ← # TYPE iam_serve_requests_total counter
//! ← iam_serve_requests_total 42
//! ← …
//! ← END
//! → QUIT                      # close the connection
//! ```
//!
//! Query grammar: whitespace-separated terms, each `col=value` (point
//! constraint) or `col=lo..hi` (closed range; either bound may be `*` for
//! unbounded). Repeated terms for one column intersect. Malformed lines get
//! `ERR <reason>` and the connection stays open.

use crate::error::ServeError;
use crate::service::Client;
use iam_data::{Interval, RangeQuery};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Parse one protocol line into a [`RangeQuery`] over `ncols` columns.
pub fn parse_query(line: &str, ncols: usize) -> Result<RangeQuery, ServeError> {
    let bad = |m: String| ServeError::BadQuery(m);
    let mut rq = RangeQuery::unconstrained(ncols);
    let mut terms = 0usize;
    for term in line.split_whitespace() {
        terms += 1;
        let (col_s, range_s) =
            term.split_once('=').ok_or_else(|| bad(format!("expected col=range, got {term:?}")))?;
        let col: usize = col_s.parse().map_err(|_| bad(format!("bad column index {col_s:?}")))?;
        if col >= ncols {
            return Err(bad(format!("column {col} out of range (model has {ncols})")));
        }
        let parse_bound = |s: &str, open: f64| -> Result<f64, ServeError> {
            if s == "*" {
                return Ok(open);
            }
            let v: f64 = s.parse().map_err(|_| bad(format!("bad number {s:?}")))?;
            if v.is_nan() {
                return Err(bad("NaN bound".into()));
            }
            Ok(v)
        };
        let iv = match range_s.split_once("..") {
            Some((lo_s, hi_s)) => Interval::closed(
                parse_bound(lo_s, f64::NEG_INFINITY)?,
                parse_bound(hi_s, f64::INFINITY)?,
            ),
            None if range_s == "*" => {
                return Err(bad("point constraint cannot be open (*)".into()))
            }
            None => Interval::point(parse_bound(range_s, 0.0)?),
        };
        rq.cols[col] = Some(match rq.cols[col].take() {
            Some(prev) => prev.intersect(&iv),
            None => iv,
        });
    }
    if terms == 0 {
        return Err(bad("empty query".into()));
    }
    Ok(rq)
}

/// A running TCP front-end. [`TcpFrontend::stop`] ends the accept loop;
/// already-open connections keep their handler threads until the peer
/// disconnects (fine for tests and demos).
pub struct TcpFrontend {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl TcpFrontend {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `client` over it.
    pub fn spawn<A: ToSocketAddrs>(client: Client, addr: A) -> io::Result<TcpFrontend> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("iam-serve-accept".into())
            .spawn(move || accept_loop(listener, client, &stop2))
            .expect("spawn accept loop");
        Ok(TcpFrontend { addr, stop, accept_thread })
    }

    /// Stop accepting new connections and join the accept loop.
    pub fn stop(self) {
        self.stop.store(true, Relaxed);
        let _ = self.accept_thread.join();
    }
}

fn accept_loop(listener: TcpListener, client: Client, stop: &AtomicBool) {
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = client.clone();
                let _ =
                    std::thread::Builder::new().name("iam-serve-conn".into()).spawn(move || {
                        let _ = handle_connection(stream, &client);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(stream: TcpStream, client: &Client) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match trimmed {
            "QUIT" => break,
            "STATS" => {
                out.write_all(client.metrics().render().as_bytes())?;
                out.write_all(b"END\n")?;
            }
            "STATS PROM" => {
                out.write_all(client.metrics_prometheus().as_bytes())?;
                out.write_all(b"END\n")?;
            }
            "VERSION" => {
                let (id, label) = client.current_version();
                writeln!(out, "{id} {label}")?;
            }
            query => match parse_query(query, client.ncols()).and_then(|rq| client.estimate(&rq)) {
                Ok(sel) => writeln!(out, "{sel:.6}")?,
                Err(e) => writeln!(out, "ERR {e}")?,
            },
        }
        out.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_points_and_ranges() {
        let rq = parse_query("0=3 1=2.5..9", 3).unwrap();
        assert_eq!(rq.cols[0], Some(Interval::point(3.0)));
        assert_eq!(rq.cols[1], Some(Interval::closed(2.5, 9.0)));
        assert_eq!(rq.cols[2], None);
    }

    #[test]
    fn open_bounds_via_star() {
        let rq = parse_query("1=*..0.5 0=-2..*", 2).unwrap();
        let iv1 = rq.cols[1].unwrap();
        assert_eq!(iv1.lo, f64::NEG_INFINITY);
        assert_eq!(iv1.hi, 0.5);
        let iv0 = rq.cols[0].unwrap();
        assert_eq!(iv0.lo, -2.0);
        assert_eq!(iv0.hi, f64::INFINITY);
    }

    #[test]
    fn repeated_terms_intersect() {
        let rq = parse_query("0=1..10 0=5..20", 1).unwrap();
        assert_eq!(rq.cols[0], Some(Interval::closed(5.0, 10.0)));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["nonsense", "0:3", "x=1", "0=a..b", "5=1..2", "", "0=*"] {
            assert!(parse_query(bad, 2).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn canonical_keys_match_construction_route() {
        // a parsed query must cache-key identically to the same query built
        // programmatically
        let parsed = parse_query("0=3 1=2.5..9", 2).unwrap();
        let mut built = RangeQuery::unconstrained(2);
        built.cols[0] = Some(Interval::point(3.0));
        built.cols[1] = Some(Interval::closed(2.5, 9.0));
        assert_eq!(parsed.canonical_key(), built.canonical_key());
    }
}
