//! Accuracy-observability integration: the TRACKED/REPORT feedback loop
//! over the TCP front-end, q-error histograms in every exposition, and
//! deterministic bucket ordering across views.

use iam_core::{IamConfig, IamEstimator};
use iam_data::exec::exact_selectivity_ranges;
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_serve::{parse_query, render_query, ServeConfig, Service, TcpFrontend};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn tiny_model(seed: u64) -> (IamEstimator, iam_data::Table) {
    let table = Dataset::Twi.generate(800, seed);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![24, 24],
        embed_dim: 6,
        epochs: 2,
        samples: 100,
        seed,
        ..IamConfig::default()
    };
    (IamEstimator::fit(&table, cfg), table)
}

fn qerror_config() -> ServeConfig {
    ServeConfig { qerror_capacity: 64, qerror_seed: 7, ..ServeConfig::default() }
}

fn send_line(out: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(out, "{line}").unwrap();
    out.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim().to_string()
}

/// The paper's floored q-error, recomputed independently of the tracker.
fn expected_q(est: f64, true_count: u64, nrows: u64) -> f64 {
    let floor = 1.0 / nrows as f64;
    let e = est.max(floor);
    let a = (true_count as f64 / nrows as f64).max(floor);
    (e / a).max(a / e)
}

#[test]
fn report_feedback_loop_over_tcp() {
    let (est, table) = tiny_model(3);
    let nrows = table.nrows() as u64;
    let service = Service::start(est, "v1", qerror_config());
    let front = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(front.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut out = stream;

    // TRACKED answers `<qid> <estimate>`; qid matches the canonical key
    let reply = send_line(&mut out, &mut reader, "TRACKED 0=1..40 1=2..50");
    let (qid_s, est_s) = reply.split_once(' ').expect("qid estimate");
    let qid: u64 = qid_s.parse().unwrap();
    let estimate: f64 = est_s.parse().unwrap();
    let rq = parse_query("0=1..40 1=2..50", 2).unwrap();
    assert_eq!(qid, rq.canonical_key());

    // the client executes the query and reports the observed true count
    let true_count = (exact_selectivity_ranges(&table, &rq) * nrows as f64).round() as u64;
    let reply = send_line(&mut out, &mut reader, &format!("REPORT {qid} {true_count}"));
    let q: f64 = reply.strip_prefix("OK ").expect(&reply).parse().unwrap();
    let want = expected_q(estimate, true_count, nrows);
    assert!((q - want).abs() < 1e-4, "q-error {q} vs recomputed {want}");
    assert!(q >= 1.0);

    // a bogus qid is an ERR, not a connection problem
    let reply = send_line(&mut out, &mut reader, "REPORT 12345 10");
    assert_eq!(reply, "ERR no record for qid");
    let reply = send_line(&mut out, &mut reader, "REPORT nonsense");
    assert!(reply.starts_with("ERR usage"), "{reply}");

    // STATS carries the resolved report and its histogram
    writeln!(out, "STATS").unwrap();
    out.flush().unwrap();
    let mut stats = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim() == "END" {
            break;
        }
        stats.push_str(&line);
    }
    // reports counts attempts (1 matched + 1 bogus qid), unmatched the misses
    assert!(stats.contains("qerror_reports 2"), "{stats}");
    assert!(stats.contains("qerror_unmatched 1"), "{stats}");
    assert!(stats.contains("qerror_milli_p50"), "{stats}");

    // PROM exposition has the q-error family too
    writeln!(out, "STATS PROM").unwrap();
    out.flush().unwrap();
    let mut prom = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim() == "END" {
            break;
        }
        prom.push_str(&line);
    }
    assert!(prom.contains("# TYPE iam_qerror_milli histogram"), "{prom}");
    assert!(prom.contains("iam_qerror_reports_total 2"), "{prom}");
    assert!(prom.contains("iam_qerror_unmatched_total 1"), "{prom}");
    assert!(prom.contains("iam_qerror_col_mean{col=\"0\"}"), "{prom}");

    writeln!(out, "QUIT").unwrap();
    out.flush().unwrap();
    front.stop();
    service.shutdown();
}

#[test]
fn seeded_workload_hits_expected_percentile_bits() {
    // Deterministic end-to-end accuracy run: every workload query is
    // estimated, executed exactly, and reported; the resulting p50/p95
    // must land in fixed milli-q buckets for this (model seed, workload
    // seed) pair — any change to estimator numerics or the q-error
    // pipeline that shifts them is a regression to investigate.
    let (est, table) = tiny_model(5);
    let nrows = table.nrows() as u64;
    let service = Service::start(est, "v1", qerror_config());
    let client = service.client();

    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 0xFEED);
    let queries: Vec<RangeQuery> =
        gen.gen_queries(32).iter().map(|q| q.normalize(2).unwrap().0).collect();

    let mut qs = Vec::new();
    for rq in &queries {
        let estimate = client.estimate(rq).unwrap();
        let true_count = (exact_selectivity_ranges(&table, rq) * nrows as f64).round() as u64;
        let q = service
            .report_true_count(rq.canonical_key(), true_count)
            .expect("capacity covers the whole workload");
        qs.push(q);
        assert!((q - expected_q(estimate, true_count, nrows)).abs() < 1e-9);
    }

    // the snapshot's bucketed percentiles agree with an exact recomputation
    let snap = service.metrics();
    assert_eq!(snap.qerror_reports, queries.len() as u64);
    assert_eq!(snap.qerror_unmatched, 0);
    let mut sorted = qs.clone();
    sorted.sort_by(f64::total_cmp);
    let exact_p50 = sorted[(sorted.len() - 1) / 2];
    let exact_p95 =
        sorted[((sorted.len() as f64 * 0.95).ceil() as usize - 1).min(sorted.len() - 1)];
    let bucket_of = |q: f64| {
        iam_obs::qerror::QERROR_MILLI_BOUNDS
            .iter()
            .copied()
            .find(|&b| (q * 1000.0).round() as u64 <= b)
            .unwrap()
    };
    assert_eq!(snap.qerror_p50_milli, bucket_of(exact_p50), "p50 bucket");
    assert_eq!(snap.qerror_p95_milli, bucket_of(exact_p95), "p95 bucket");
    assert!(snap.qerror_p95_milli >= snap.qerror_p50_milli);

    // reservoir dump is sorted by qid and carries the canonical predicate
    let records = service.qerror_records();
    assert_eq!(records.len(), queries.len());
    assert!(records.windows(2).all(|w| w[0].qid < w[1].qid));
    for r in &records {
        let back = parse_query(&r.predicate, 2).expect("predicate parses");
        assert_eq!(back.canonical_key(), r.qid, "predicate text matches qid");
        assert_eq!(r.nrows, nrows);
        assert_eq!(r.model_version, 1);
    }

    service.shutdown();
}

#[test]
fn bucket_ordering_is_deterministic_across_expositions() {
    let (est, table) = tiny_model(9);
    let nrows = table.nrows() as u64;
    let service = Service::start(est, "v1", qerror_config());
    let client = service.client();
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 0xBEEF);
    for rq in gen.gen_queries(8).iter().map(|q| q.normalize(2).unwrap().0) {
        client.estimate(&rq).unwrap();
        let true_count = (exact_selectivity_ranges(&table, &rq) * nrows as f64).round() as u64;
        service.report_true_count(rq.canonical_key(), true_count);
    }

    // STATS view: qerror bucket lines ascend by bound, catch-all last
    let stats = service.metrics().render();
    let bounds: Vec<u64> = stats
        .lines()
        .filter_map(|l| l.strip_prefix("qerror_milli_bucket_le_"))
        .filter_map(|l| l.split(' ').next())
        .map(|b| b.parse().unwrap())
        .collect();
    assert!(!bounds.is_empty());
    assert!(bounds.windows(2).all(|w| w[0] < w[1]), "sorted STATS buckets: {bounds:?}");
    assert!(
        stats
            .lines()
            .rev()
            .find(|l| l.starts_with("qerror_milli_bucket"))
            .unwrap()
            .starts_with("qerror_milli_bucket_inf"),
        "catch-all renders last"
    );

    // PROM view: same family, same ascending le= order
    let prom = service.metrics_prometheus();
    let les: Vec<String> = prom
        .lines()
        .filter(|l| l.starts_with("iam_qerror_milli_bucket"))
        .filter_map(|l| l.split("le=\"").nth(1))
        .filter_map(|l| l.split('"').next())
        .map(str::to_string)
        .collect();
    let finite: Vec<u64> = les.iter().filter_map(|s| s.parse().ok()).collect();
    assert_eq!(finite.len() + 1, les.len(), "exactly one +Inf catch-all");
    assert_eq!(les.last().map(String::as_str), Some("+Inf"));
    assert!(finite.windows(2).all(|w| w[0] < w[1]), "sorted PROM buckets: {finite:?}");
    assert_eq!(finite, bounds[..bounds.len()].to_vec(), "STATS and PROM agree on bucket keys");

    // render_query degenerate case used by the reservoir dump
    assert_eq!(render_query(&RangeQuery::unconstrained(2)), "*");

    service.shutdown();
}
