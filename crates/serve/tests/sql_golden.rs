//! SQL front-end golden tests and the render/parse round-trip property.
//!
//! Pins the tentpole acceptance criterion: `SQL SELECT COUNT(*)` answers
//! are **bit-identical** to the equivalent `col=lo..hi` line-protocol
//! query — both at the library level (same canonical key → same sampling
//! seed → same estimate bits) and over a live TCP connection (the `SEL`
//! field prints the exact line-protocol reply text). Also proves the
//! `render_query`/`parse_query` asymmetry fixes with an arbitrary-query
//! property test, and the NaN-free `AVG NULL` encoding end to end.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{Interval, RangeQuery};
use iam_serve::{parse_query, render_query, ServeConfig, Service, TcpFrontend};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn tiny_model(seed: u64) -> IamEstimator {
    let table = Dataset::Twi.generate(800, seed);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![24, 24],
        embed_dim: 6,
        epochs: 2,
        samples: 100,
        seed,
        ..IamConfig::default()
    };
    IamEstimator::fit(&table, cfg)
}

fn send_line(out: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(out, "{line}").unwrap();
    out.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim().to_string()
}

#[test]
fn sql_count_is_bit_identical_to_line_protocol() {
    let service = Service::start(tiny_model(5), "v1", ServeConfig::default());
    let client = service.client();
    let cases = [
        ("0=1 1=2.5..9", "SELECT COUNT(*) FROM twi WHERE c0 = 1 AND c1 BETWEEN 2.5 AND 9"),
        ("1=*..0.5", "SELECT COUNT(*) FROM twi WHERE c1 <= 0.5"),
        ("0=2", "SELECT COUNT(*) FROM twi WHERE c0 = 2"),
        ("1=-1..4 0=0..*", "SELECT COUNT(*) FROM twi WHERE c1 BETWEEN -1 AND 4 AND c0 >= 0"),
    ];
    for (line, sql) in cases {
        let rq = parse_query(line, client.ncols()).unwrap();
        let stmt = match iam_sql::parse(sql).unwrap() {
            iam_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let lowered = iam_sql::lower_single_table(&stmt, client.ncols()).unwrap();
        // identical canonical keys ⇒ identical sampling seed and cache slot
        assert_eq!(lowered.canonical_key(), rq.canonical_key(), "{line} vs {sql}");
        let via_line = client.estimate(&rq).unwrap();
        let via_sql = client.estimate(&lowered).unwrap();
        assert_eq!(via_sql.to_bits(), via_line.to_bits(), "{line} vs {sql}");
    }
    service.shutdown();
}

#[test]
fn sql_over_tcp_matches_line_protocol_reply_text() {
    let service = Service::start(tiny_model(6), "v1", ServeConfig::default());
    let front = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(front.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut out = stream;

    let line_reply = send_line(&mut out, &mut reader, "0=1 1=2.5..9");
    let sql_reply = send_line(
        &mut out,
        &mut reader,
        "SQL SELECT COUNT(*) FROM twi WHERE c0 = 1 AND c1 BETWEEN 2.5 AND 9",
    );
    let parts: Vec<&str> = sql_reply.split_whitespace().collect();
    assert_eq!(parts[0], "COUNT", "{sql_reply}");
    assert_eq!(parts[2], "SEL", "{sql_reply}");
    // the SEL field is byte-for-byte the line-protocol reply
    assert_eq!(parts[3], line_reply, "{sql_reply}");
    assert_eq!(parts[4], "NROWS");
    let nrows: f64 = parts[5].parse().unwrap();
    let sel: f64 = parts[3].parse().unwrap();
    let count: f64 = parts[1].parse().unwrap();
    assert!((count - sel * nrows).abs() < 1e-3, "{sql_reply}");

    front.stop();
    service.shutdown();
}

#[test]
fn sql_aggregates_and_explain_over_tcp() {
    let service = Service::start(tiny_model(7), "v1", ServeConfig::default());
    let front = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(front.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut out = stream;

    // SUM/AVG answer through the AQP sampler, NaN-free
    let avg = send_line(&mut out, &mut reader, "SQL SELECT AVG(c1) FROM twi WHERE c0 = 1");
    assert!(avg.starts_with("AVG "), "{avg}");
    assert!(!avg.contains("NaN"), "{avg}");
    let sum = send_line(&mut out, &mut reader, "SQL SELECT SUM(c1) FROM twi WHERE c0 = 1");
    assert!(sum.starts_with("SUM "), "{sum}");
    // deterministic: the same statement answers identically
    assert_eq!(sum, send_line(&mut out, &mut reader, "SQL SELECT SUM(c1) FROM twi WHERE c0 = 1"));

    // an unsatisfiable region answers the explicit NULL marker, not NaN
    let empty =
        send_line(&mut out, &mut reader, "SQL SELECT AVG(c1) FROM twi WHERE c0 BETWEEN 5 AND 1");
    assert!(empty.starts_with("AVG NULL "), "{empty}");
    assert!(!empty.contains("NaN"), "{empty}");

    // EXPLAIN renders a plan with per-node estimates, terminated by END
    writeln!(out, "SQL EXPLAIN SELECT COUNT(*) FROM twi WHERE c0 <= 1").unwrap();
    out.flush().unwrap();
    let mut lines = Vec::new();
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        let l = l.trim().to_string();
        if l == "END" {
            break;
        }
        lines.push(l);
    }
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].starts_with("PLAN est_cost="), "{lines:?}");
    assert!(lines[1].starts_with("scan twi est_card="), "{lines:?}");

    // joins need the cluster coordinator; a single serve process says so
    let err = send_line(&mut out, &mut reader, "SQL SELECT COUNT(*) FROM a JOIN b ON a.c0 = b.c0");
    assert!(err.starts_with("ERR "), "{err}");
    // malformed SQL gets ERR, connection stays usable
    let err = send_line(&mut out, &mut reader, "SQL SELEC COUNT(*) FROM t");
    assert!(err.starts_with("ERR "), "{err}");
    let ok = send_line(&mut out, &mut reader, "SQL SELECT COUNT(*) FROM twi");
    assert!(ok.starts_with("COUNT "), "{ok}");

    front.stop();
    service.shutdown();
}

/// Deterministic arbitrary-interval generator driven by a SplitMix64
/// stream: mixes finite values, ±∞, ±0.0, huge magnitudes, empty
/// intervals (`lo > hi` and strictness-emptied points), and open bounds.
fn arbitrary_query(seed: u64, ncols: usize) -> RangeQuery {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    const POOL: [f64; 12] = [
        f64::NEG_INFINITY,
        f64::INFINITY,
        0.0,
        -0.0,
        1.0,
        -1.5,
        2.5,
        1e300,
        -1e300,
        1e-300,
        0.1,
        7.25,
    ];
    let mut rq = RangeQuery::unconstrained(ncols);
    for col in 0..ncols {
        match next() % 4 {
            0 => continue, // unconstrained
            1 => {
                // point (possibly at ±∞)
                rq.cols[col] = Some(Interval::point(POOL[(next() % 12) as usize]));
            }
            _ => {
                let lo = POOL[(next() % 12) as usize];
                let hi = POOL[(next() % 12) as usize];
                rq.cols[col] = Some(Interval {
                    lo,
                    hi,
                    lo_strict: next() % 3 == 0,
                    hi_strict: next() % 3 == 0,
                });
            }
        }
    }
    rq
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// `parse_query(render_query(q))` round-trips every valid query to an
    /// equivalent one: constrained columns stay constrained, emptiness is
    /// preserved, and non-empty intervals keep their exact endpoints
    /// (strictness flags, inexpressible in the text grammar, relax to
    /// closed bounds — the canonical key carries them instead).
    #[test]
    fn render_parse_round_trips_arbitrary_queries(seed in 0u64..10_000) {
        let ncols = 1 + (seed % 4) as usize;
        let rq = arbitrary_query(seed * 0x51ED_2705, ncols);
        let rendered = render_query(&rq);
        let back = parse_query(&rendered, ncols);
        prop_assert!(back.is_ok(), "{rendered:?} failed to re-parse: {back:?}");
        let back = back.unwrap();
        for col in 0..ncols {
            match (&rq.cols[col], &back.cols[col]) {
                (None, None) => {}
                (Some(o), Some(b)) => {
                    prop_assert_eq!(
                        o.is_empty(), b.is_empty(),
                        "col {} emptiness changed: {:?} → {:?} ({})", col, o, b, rendered
                    );
                    if !o.is_empty() {
                        prop_assert!(
                            b.lo == o.lo && b.hi == o.hi && !b.lo_strict && !b.hi_strict,
                            "col {} bounds changed: {:?} → {:?} ({})", col, o, b, rendered
                        );
                    }
                }
                (o, b) => prop_assert!(
                    false,
                    "col {} constraint presence changed: {:?} → {:?} ({})", col, o, b, rendered
                ),
            }
        }
        // rendering is a fixpoint: a re-parsed query renders identically
        prop_assert_eq!(render_query(&back), rendered);
    }
}
