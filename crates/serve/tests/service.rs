//! Integration tests for the serving layer: bitwise parity with direct
//! inference, backpressure, hot-swap/rollback, draining shutdown, and the
//! TCP front-end.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_serve::{parse_query, ServeConfig, ServeError, Service, TcpFrontend, MAX_LINE_BYTES};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn tiny_model(seed: u64) -> IamEstimator {
    let table = Dataset::Twi.generate(800, seed);
    let cfg = IamConfig {
        components: 4,
        hidden: vec![24, 24],
        embed_dim: 6,
        epochs: 2,
        samples: 100,
        seed,
        ..IamConfig::default()
    };
    IamEstimator::fit(&table, cfg)
}

fn workload(seed: u64, n: usize) -> Vec<RangeQuery> {
    let table = Dataset::Twi.generate(800, seed);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), seed ^ 0xABCD);
    gen.gen_queries(n).iter().map(|q| q.normalize(2).unwrap().0).collect()
}

/// The acceptance criterion: estimates served through the queue + batcher +
/// cache are bitwise identical to direct batched inference, from any number
/// of concurrent clients, regardless of how requests get coalesced.
#[test]
fn service_matches_direct_inference_bitwise() {
    let est = tiny_model(1);
    let queries = workload(1, 12);
    let direct = est.estimate_batch_shared(&queries, 1);

    let service = Service::start(
        est,
        "v1",
        ServeConfig {
            workers: 2,
            max_batch: 8,
            flush_interval: Duration::from_millis(5),
            inner_threads: 2,
            ..ServeConfig::default()
        },
    );

    std::thread::scope(|s| {
        for t in 0..4 {
            let client = service.client();
            let queries = &queries;
            let direct = &direct;
            s.spawn(move || {
                // each thread walks the workload from a different offset so
                // batches mix different queries
                for i in 0..queries.len() {
                    let j = (i + t * 3) % queries.len();
                    let got = client.estimate(&queries[j]).expect("estimate failed");
                    assert_eq!(
                        got.to_bits(),
                        direct[j].to_bits(),
                        "query {j} served {got} but direct inference gave {}",
                        direct[j]
                    );
                }
            });
        }
    });

    // every answer is now cached: a re-query must hit
    let client = service.client();
    let (hits_before, _) = {
        let s = client.metrics();
        (s.cache_hits, s.cache_misses)
    };
    for (q, &d) in queries.iter().zip(&direct) {
        assert_eq!(client.estimate(q).unwrap().to_bits(), d.to_bits());
    }
    let snap = service.shutdown();
    assert!(
        snap.cache_hits >= hits_before + queries.len() as u64,
        "re-queries should all hit the cache: {snap:?}"
    );
    assert!(snap.batches > 0, "no batches executed");
    assert_eq!(snap.replies as usize, 4 * queries.len() + queries.len());
    assert_eq!(snap.timeouts, 0);
    assert_eq!(snap.overloaded, 0);
}

/// With no workers the queue never drains: once it is full, submissions
/// must be rejected immediately with `Overloaded` — not block — and the
/// queued requests time out.
#[test]
fn overloaded_queue_rejects_without_blocking() {
    let service = Service::start(
        tiny_model(2),
        "v1",
        ServeConfig { workers: 0, queue_depth: 2, cache_capacity: 0, ..ServeConfig::default() },
    );
    let queries = workload(2, 3);

    std::thread::scope(|s| {
        for q in &queries[..2] {
            let client = service.client();
            s.spawn(move || {
                assert_eq!(
                    client.estimate_timeout(q, Duration::from_millis(600)),
                    Err(ServeError::Timeout),
                    "queued request with no workers must time out"
                );
            });
        }
        // wait until both fillers are queued
        let client = service.client();
        let t0 = Instant::now();
        while client.metrics().queue_depth < 2 {
            assert!(t0.elapsed() < Duration::from_secs(2), "fillers never enqueued");
            std::thread::sleep(Duration::from_millis(5));
        }
        let t1 = Instant::now();
        assert_eq!(
            client.estimate_timeout(&queries[2], Duration::from_millis(500)),
            Err(ServeError::Overloaded)
        );
        assert!(
            t1.elapsed() < Duration::from_millis(400),
            "overload rejection must not wait for the timeout"
        );
    });

    let snap = service.shutdown();
    assert_eq!(snap.overloaded, 1);
    assert_eq!(snap.timeouts, 2);
}

/// Hot-swapping changes which model answers; version-tagged cache entries
/// from the old model are never served; rollback restores the old answers.
#[test]
fn hot_swap_and_rollback_change_answers() {
    let est_a = tiny_model(3);
    let est_b = tiny_model(4);
    let queries = workload(3, 4);
    let direct_a = est_a.estimate_batch_shared(&queries, 1);
    let direct_b = est_b.estimate_batch_shared(&queries, 1);
    // the two trainings must actually disagree for this test to mean much
    assert!(direct_a.iter().zip(&direct_b).any(|(a, b)| a.to_bits() != b.to_bits()));

    let service = Service::start(est_a, "run-a", ServeConfig { workers: 1, ..Default::default() });
    let client = service.client();
    for (q, &d) in queries.iter().zip(&direct_a) {
        assert_eq!(client.estimate(q).unwrap().to_bits(), d.to_bits());
    }

    let id = service.swap_model(est_b, "run-b");
    assert_eq!(id, 2);
    assert_eq!(service.current_version(), (2, "run-b".to_string()));
    for (q, &d) in queries.iter().zip(&direct_b) {
        assert_eq!(
            client.estimate(q).unwrap().to_bits(),
            d.to_bits(),
            "swap must invalidate cached answers from run-a"
        );
    }

    assert_eq!(service.rollback_model().unwrap(), 1);
    for (q, &d) in queries.iter().zip(&direct_a) {
        assert_eq!(client.estimate(q).unwrap().to_bits(), d.to_bits());
    }

    let snap = service.shutdown();
    assert_eq!(snap.model_swaps, 2);
}

/// `refresh_model` retrains a clone of the active model and hot-swaps it in,
/// and the training thread count never changes the refreshed answers — two
/// services refreshed from the same version with different `train_threads`
/// must serve bitwise-identical estimates.
#[test]
fn refresh_model_is_train_thread_invariant() {
    let table = Dataset::Twi.generate(800, 11);
    let base = tiny_model(11);
    let queries = workload(11, 4);
    let direct_before = base.estimate_batch_shared(&queries, 1);

    let svc_a =
        Service::start(base.clone(), "v1", ServeConfig { workers: 1, ..Default::default() });
    let svc_b = Service::start(base, "v1", ServeConfig { workers: 1, ..Default::default() });

    let id_a = svc_a.refresh_model(&table, 2, 1, "refresh-1t");
    let id_b = svc_b.refresh_model(&table, 2, 2, "refresh-2t");
    assert_eq!(id_a, 2);
    assert_eq!(id_b, 2);
    assert_eq!(svc_a.current_version(), (2, "refresh-1t".to_string()));

    let (ca, cb) = (svc_a.client(), svc_b.client());
    let mut any_changed = false;
    for (i, q) in queries.iter().enumerate() {
        let a = ca.estimate(q).unwrap();
        let b = cb.estimate(q).unwrap();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {i}: 1-thread refresh served {a}, 2-thread refresh served {b}"
        );
        any_changed |= a.to_bits() != direct_before[i].to_bits();
    }
    assert!(any_changed, "two extra epochs should move at least one estimate");

    let snap = svc_a.shutdown();
    assert_eq!(snap.model_swaps, 1);
    svc_b.shutdown();
}

/// Estimates issued while `refresh_model` hot-swaps the registry are
/// answered entirely by the old or entirely by the new version — every
/// observed answer matches one of the two direct-inference bit patterns,
/// and after the swap completes only new-version bits are served.
#[test]
fn hot_swap_under_concurrent_load_never_mixes_versions() {
    use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

    let table = Dataset::Twi.generate(800, 15);
    let old = tiny_model(15);
    let mut new = old.clone();
    new.train_epochs(&table, 2);
    let queries = workload(15, 6);
    let old_bits: Vec<u64> =
        old.estimate_batch_shared(&queries, 1).iter().map(|v| v.to_bits()).collect();
    let new_bits: Vec<u64> =
        new.estimate_batch_shared(&queries, 1).iter().map(|v| v.to_bits()).collect();
    assert_ne!(old_bits, new_bits, "refresh must actually change some answer");

    // cache on: version-tagged entries must never leak across the swap
    let service = Service::start(old, "v1", ServeConfig { workers: 2, ..ServeConfig::default() });
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let loaders: Vec<_> = (0..3)
            .map(|t| {
                let client = service.client();
                let (stop, queries, old_bits, new_bits) = (&stop, &queries, &old_bits, &new_bits);
                s.spawn(move || {
                    let mut n = 0usize;
                    while !stop.load(Relaxed) {
                        let i = (n + t) % queries.len();
                        let got = client.estimate(&queries[i]).expect("estimate failed").to_bits();
                        assert!(
                            got == old_bits[i] || got == new_bits[i],
                            "query {i} answered bits {got:#x} matching neither version — \
                             a mixed or torn model was served during the swap"
                        );
                        n += 1;
                    }
                    n
                })
            })
            .collect();

        // same retrain as `new` (same data, threads, epochs): the swapped-in
        // model is bitwise the one whose answers we precomputed
        let id = service.refresh_model(&table, 2, 1, "v2");
        assert_eq!(id, 2);
        stop.store(true, Relaxed);
        let answered: usize = loaders.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(answered > 0, "load threads never ran during the swap");
    });

    // post-swap, only new-version answers remain (cache included)
    let client = service.client();
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(client.estimate(q).unwrap().to_bits(), new_bits[i], "query {i} post-swap");
    }
    service.shutdown();
}

/// A snapshot that fails to parse must leave the active version serving.
#[test]
fn failed_load_rolls_back_to_active_version() {
    let est = tiny_model(5);
    let queries = workload(5, 2);
    let direct = est.estimate_batch_shared(&queries, 1);
    let service = Service::start(est, "v1", ServeConfig { workers: 1, ..Default::default() });
    let client = service.client();

    let err = service.load_model(&mut &b"IAM1 garbage"[..], "broken").unwrap_err();
    assert!(matches!(err, ServeError::Load(_)));
    assert_eq!(service.current_version().0, 1);
    for (q, &d) in queries.iter().zip(&direct) {
        assert_eq!(client.estimate(q).unwrap().to_bits(), d.to_bits());
    }
    service.shutdown();
}

/// Shutdown must drain: every request accepted into the queue gets a real
/// reply; requests arriving after the flag see `ShuttingDown`; nothing
/// times out.
#[test]
fn shutdown_drains_accepted_requests() {
    let service = Service::start(
        tiny_model(6),
        "v1",
        ServeConfig {
            workers: 1,
            max_batch: 64,
            flush_interval: Duration::from_millis(20),
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    let queries = workload(6, 8);

    let mut handles = Vec::new();
    for q in queries.clone() {
        let client = service.client();
        handles.push(std::thread::spawn(move || client.estimate(&q)));
    }
    // let some requests enter the queue, then drain
    std::thread::sleep(Duration::from_millis(5));
    let snap = service.shutdown();

    let mut answered = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(sel) => {
                assert!((0.0..=1.0).contains(&sel));
                answered += 1;
            }
            Err(ServeError::ShuttingDown) => {}
            Err(e) => panic!("drain lost a request: {e}"),
        }
    }
    assert_eq!(snap.timeouts, 0);
    assert_eq!(answered as u64, snap.replies, "every accepted request must be answered");
}

/// Arity mismatches are rejected before queueing.
#[test]
fn wrong_arity_is_a_bad_query() {
    let service = Service::start(tiny_model(7), "v1", ServeConfig::default());
    let client = service.client();
    assert_eq!(client.ncols(), 2);
    let q = RangeQuery::unconstrained(5);
    assert!(matches!(client.estimate(&q), Err(ServeError::BadQuery(_))));
    let snap = service.shutdown();
    assert_eq!(snap.bad_queries, 1);
}

/// Pull one `series value` sample out of a Prometheus text exposition.
fn prom_value(prom: &str, series: &str) -> u64 {
    prom.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("series {series} missing from exposition:\n{prom}"))
        .parse()
        .unwrap_or_else(|_| panic!("series {series} is not a u64"))
}

/// After a concurrent run, STATS totals must equal the sum of per-worker
/// observations, and the Prometheus exposition must agree with the plain
/// snapshot series for series.
#[test]
fn concurrent_totals_consistent_across_expositions() {
    let service = Service::start(
        tiny_model(9),
        "v1",
        // cache off so every reply flows through the queue + batcher
        ServeConfig { workers: 2, cache_capacity: 0, ..ServeConfig::default() },
    );
    let queries = workload(9, 10);

    const THREADS: usize = 4;
    const PER_THREAD: usize = 10;
    let per_thread_ok: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = service.client();
                let queries = &queries;
                s.spawn(move || {
                    let mut ok = 0usize;
                    for i in 0..PER_THREAD {
                        if client.estimate(&queries[(i + t) % queries.len()]).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total_ok: u64 = per_thread_ok.iter().map(|&n| n as u64).sum();

    // keep a client so the exposition can be rendered after the workers
    // have been joined (metrics are flushed by then, not merely racing)
    let client = service.client();
    let snap = service.shutdown();
    let prom = client.metrics_prometheus();

    assert_eq!(snap.requests, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.timeouts, 0, "{snap:?}");
    assert_eq!(snap.overloaded, 0, "{snap:?}");
    // the service's totals are exactly the sum of what the client threads saw
    assert_eq!(snap.replies, total_ok);

    // the Prometheus view and the STATS snapshot agree sample for sample
    assert_eq!(prom_value(&prom, "iam_serve_requests_total"), snap.requests);
    assert_eq!(prom_value(&prom, "iam_serve_latency_us_count"), snap.replies);
    assert_eq!(prom_value(&prom, "iam_serve_batches_total"), snap.batches);
    assert_eq!(prom_value(&prom, "iam_serve_batched_queries_total"), snap.batched_queries);
    // with the cache off, every reply was coalesced into some batch
    assert_eq!(prom_value(&prom, "iam_serve_batch_size_sum"), snap.replies);
    // the exposition also carries the process-global inference probes,
    // which other tests in this binary advance too — so only a lower bound
    assert!(prom_value(&prom, "iam_infer_queries_total") >= snap.batched_queries, "{prom}");
}

/// End-to-end over TCP: queries, VERSION, STATS, error replies, QUIT.
#[test]
fn tcp_frontend_serves_line_protocol() {
    let est = tiny_model(8);
    let query_line = "0=0.2..0.8 1=*..0.5";
    let rq = parse_query(query_line, 2).unwrap();
    let direct = est.estimate_batch_shared(std::slice::from_ref(&rq), 1)[0];

    let service = Service::start(est, "tcp-test", ServeConfig { workers: 1, ..Default::default() });
    let frontend = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(frontend.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let write = |s: &str| {
        let mut w = &stream;
        writeln!(w, "{s}").unwrap();
    };
    let mut read_line = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    write("VERSION");
    assert_eq!(read_line(), "1 tcp-test");

    write(query_line);
    assert_eq!(read_line(), format!("{direct:.6}"));

    // same line again: answered from cache, same bits
    write(query_line);
    assert_eq!(read_line(), format!("{direct:.6}"));

    write("this is not a query");
    assert!(read_line().starts_with("ERR "));

    write("STATS");
    let mut stats = Vec::new();
    loop {
        let l = read_line();
        if l == "END" {
            break;
        }
        stats.push(l);
    }
    assert!(stats.iter().any(|l| l.starts_with("requests_total ")));
    assert!(
        stats.iter().any(|l| l == "cache_hits 1"),
        "second query should have hit the cache: {stats:?}"
    );

    write("STATS PROM");
    let mut prom = Vec::new();
    loop {
        let l = read_line();
        if l == "END" {
            break;
        }
        prom.push(l);
    }
    assert!(prom.contains(&"# TYPE iam_serve_requests_total counter".to_string()), "{prom:?}");
    assert!(prom.iter().any(|l| l == "iam_serve_cache_hits_total 1"), "{prom:?}");
    assert!(prom.iter().any(|l| l.starts_with("iam_serve_latency_us_bucket{le=\"+Inf\"}")));

    write("QUIT");
    frontend.stop();
    service.shutdown();
}

/// `TcpFrontend::stop` must end handler threads even while a connection is
/// open and idle mid-session — no leaked threads, no hang — and the peer
/// then observes a closed socket.
#[test]
fn tcp_frontend_stop_closes_idle_connections() {
    let service = Service::start(tiny_model(12), "v1", ServeConfig::default());
    let frontend = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();

    // open a connection, exchange one round-trip, then go idle (no QUIT)
    let stream = TcpStream::connect(frontend.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    {
        let mut w = &stream;
        writeln!(w, "VERSION").unwrap();
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "1 v1");

    // stop() joins the accept loop AND the open handler; bound the wall
    // time so a hang fails fast instead of wedging the test binary
    let t0 = Instant::now();
    frontend.stop();
    assert!(t0.elapsed() < Duration::from_secs(2), "stop() must not wait on idle connections");

    // the handler dropped its end: the client sees EOF (or a reset)
    stream.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut buf = [0u8; 1];
    match reader.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected closed socket, read {n} bytes"),
    }
    service.shutdown();
}

/// A line longer than [`MAX_LINE_BYTES`] is answered with `ERR line too
/// long` and the connection is closed — the server never buffers unbounded
/// input and never panics.
#[test]
fn tcp_frontend_rejects_oversized_lines() {
    let service = Service::start(tiny_model(13), "v1", ServeConfig::default());
    let frontend = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(frontend.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    {
        // a newline-less flood well past the bound
        let chunk = vec![b'a'; MAX_LINE_BYTES + 1024];
        let mut w = &stream;
        w.write_all(&chunk).unwrap();
        w.flush().unwrap();
    }
    let mut line = String::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "ERR line too long");
    // connection is closed afterwards
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "server must close after ERR");

    // the front-end survives: a fresh connection still serves
    let stream2 = TcpStream::connect(frontend.addr).unwrap();
    let mut reader2 = BufReader::new(stream2.try_clone().unwrap());
    {
        let mut w = &stream2;
        writeln!(w, "VERSION").unwrap();
    }
    let mut line2 = String::new();
    reader2.read_line(&mut line2).unwrap();
    assert_eq!(line2.trim_end(), "1 v1");

    frontend.stop();
    service.shutdown();
}

/// Garbage on the line protocol — including non-UTF-8 bytes — gets an
/// `ERR` reply, the connection stays open, and valid queries still work
/// afterwards. No input may panic the handler.
#[test]
fn tcp_frontend_survives_garbage_lines() {
    let est = tiny_model(14);
    let rq = parse_query("0=0.1..0.9", 2).unwrap();
    let direct = est.estimate_batch_shared(std::slice::from_ref(&rq), 1)[0];
    let service = Service::start(est, "v1", ServeConfig { workers: 1, ..Default::default() });
    let frontend = TcpFrontend::spawn(service.client(), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(frontend.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut read_line = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    let garbage: &[&[u8]] = &[
        b"\xff\xfe\x00\x80 binary junk\n",
        b"0=NaN..2\n",
        b"0=1..2 9999999999999999999999=3\n",
        b"=..=..=\n",
        b"0=1e400..2\n", // overflows f64 parsing to inf — still a reply, not a panic
    ];
    for g in garbage {
        let mut w = &stream;
        w.write_all(g).unwrap();
        w.flush().unwrap();
        let reply = read_line();
        assert!(
            reply.starts_with("ERR ") || reply.parse::<f64>().is_ok(),
            "garbage {g:?} produced unexpected reply {reply:?}"
        );
    }

    // the same connection still answers real queries, bit-identically
    {
        let mut w = &stream;
        writeln!(w, "0=0.1..0.9").unwrap();
    }
    assert_eq!(read_line(), format!("{direct:.6}"));

    frontend.stop();
    service.shutdown();
}
