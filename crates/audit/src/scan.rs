//! Token-level Rust source scanner.
//!
//! Rules must never fire on text inside string literals or comments, and
//! waivers live *in* comments — so the scanner's job is to split each
//! source line into **blanked code** (string/char literal contents
//! replaced by spaces, comments removed) and the **comment text** carried
//! on that line. Everything downstream — pattern matching, brace-depth
//! structure recovery, waiver lookup — operates on that split.
//!
//! The scanner is a hand-rolled state machine over `char`s. It understands
//! line comments, nested block comments, string literals with escapes, raw
//! (and byte/raw-byte) strings with `#` fences, char and byte-char
//! literals, and the char-literal-vs-lifetime ambiguity (`'a'` vs `<'a>`).
//! It does not parse Rust — the structural pass in [`structure`] recovers
//! just enough (functions, test regions, loop bodies) for the rule scopes
//! the registry needs.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Source with comments stripped and literal contents blanked; column
    /// order of surviving code is preserved, which is all the rules need.
    pub code: String,
    /// Comment text on this line (both `//` and `/* */` forms; a block
    /// comment contributes to every line it spans).
    pub comments: Vec<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum Mode {
    Code,
    LineComment,
    /// Nested block comment (depth).
    BlockComment(u32),
    /// Inside `"…"`/`b"…"`; the bool records a pending backslash escape.
    Str(bool),
    /// Inside `r#"…"#`/`br#"…"#`; the payload is the `#` fence count.
    RawStr(u32),
    /// Inside `'…'`/`b'…'`; the bool records a pending backslash escape.
    Char(bool),
}

/// Scan full source text into per-line code/comment splits.
pub fn scan(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut comments: Vec<String> = Vec::new();
    let mut mode = Mode::Code;
    let mut chars = source.chars().peekable();
    // last non-blank code char — distinguishes the identifier `for` from a
    // raw-string prefix `r"` (the `r` must not continue an identifier)
    let mut prev_code: Option<char> = None;

    while let Some(c) = chars.next() {
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            if !comment.is_empty() {
                comments.push(std::mem::take(&mut comment));
            }
            out.push(Line {
                code: std::mem::take(&mut code),
                comments: std::mem::take(&mut comments),
            });
            prev_code = None;
            continue;
        }
        match mode {
            Mode::Code => {
                let ident_continues = prev_code.is_some_and(|p| p.is_alphanumeric() || p == '_');
                match c {
                    '/' if chars.peek() == Some(&'/') => {
                        chars.next();
                        mode = Mode::LineComment;
                    }
                    '/' if chars.peek() == Some(&'*') => {
                        chars.next();
                        mode = Mode::BlockComment(1);
                    }
                    '"' => {
                        code.push('"');
                        mode = Mode::Str(false);
                    }
                    'r' | 'b' if !ident_continues => {
                        // maybe a literal prefix: r"…", r#"…"#, b"…",
                        // br#"…"#, b'…'; lookahead decides, else it is
                        // just an identifier start
                        let mut ahead = chars.clone();
                        let mut prefix = String::new();
                        let mut raw = c == 'r';
                        if c == 'b' {
                            if ahead.peek() == Some(&'r') {
                                raw = true;
                                prefix.push('r');
                                ahead.next();
                            } else if ahead.peek() == Some(&'\'') {
                                // byte-char literal b'…'
                                chars.next();
                                code.push('b');
                                code.push('\'');
                                mode = Mode::Char(false);
                                prev_code = Some('\'');
                                continue;
                            }
                        }
                        let mut fence = 0u32;
                        while raw && ahead.peek() == Some(&'#') {
                            fence += 1;
                            prefix.push('#');
                            ahead.next();
                        }
                        if ahead.peek() == Some(&'"') && (raw || c == 'b') {
                            prefix.push('"');
                            for _ in 0..prefix.chars().count() {
                                chars.next();
                            }
                            code.push(c);
                            code.push_str(&prefix);
                            mode = if raw { Mode::RawStr(fence) } else { Mode::Str(false) };
                        } else {
                            code.push(c);
                        }
                    }
                    '\'' => {
                        // char literal vs lifetime: '\…' or 'x' followed by
                        // a closing quote is a literal; else a lifetime
                        code.push('\'');
                        let mut ahead = chars.clone();
                        match ahead.next() {
                            Some('\\') => mode = Mode::Char(false),
                            Some(_) if ahead.next() == Some('\'') => mode = Mode::Char(false),
                            _ => {}
                        }
                    }
                    _ => code.push(c),
                }
                prev_code = Some(c);
            }
            Mode::LineComment => comment.push(c),
            Mode::BlockComment(depth) => match c {
                '*' if chars.peek() == Some(&'/') => {
                    chars.next();
                    if depth == 1 {
                        if !comment.is_empty() {
                            comments.push(std::mem::take(&mut comment));
                        }
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    mode = Mode::BlockComment(depth + 1);
                }
                _ => comment.push(c),
            },
            Mode::Str(escaped) => {
                if escaped {
                    mode = Mode::Str(false);
                    code.push(' ');
                } else {
                    match c {
                        '\\' => {
                            mode = Mode::Str(true);
                            code.push(' ');
                        }
                        '"' => {
                            code.push('"');
                            mode = Mode::Code;
                            prev_code = Some('"');
                        }
                        _ => code.push(' '),
                    }
                }
            }
            Mode::RawStr(fence) => {
                if c == '"' {
                    // ends at `"` followed by exactly `fence` hashes
                    let mut ahead = chars.clone();
                    let mut n = 0u32;
                    while n < fence && ahead.peek() == Some(&'#') {
                        ahead.next();
                        n += 1;
                    }
                    if n == fence {
                        for _ in 0..fence {
                            chars.next();
                            code.push('#');
                        }
                        code.push('"');
                        mode = Mode::Code;
                        prev_code = Some('"');
                    } else {
                        code.push(' ');
                    }
                } else {
                    code.push(' ');
                }
            }
            Mode::Char(escaped) => {
                if escaped {
                    mode = Mode::Char(false);
                    code.push(' ');
                } else {
                    match c {
                        '\\' => {
                            mode = Mode::Char(true);
                            code.push(' ');
                        }
                        '\'' => {
                            code.push('\'');
                            mode = Mode::Code;
                            prev_code = Some('\'');
                        }
                        _ => code.push(' '),
                    }
                }
            }
        }
    }
    if !comment.is_empty() {
        comments.push(comment);
    }
    if !code.is_empty() || !comments.is_empty() {
        out.push(Line { code, comments });
    }
    out
}

// --- structure recovery ----------------------------------------------------

/// A function's span in a scanned file, 0-based inclusive lines.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Identifier after `fn`.
    pub name: String,
    /// Line of the `fn` keyword.
    pub start: usize,
    /// Line of the closing brace.
    pub end: usize,
    /// Carries `#[test]` or sits inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

/// A loop body's span (`for`/`while`/`loop` braces), 0-based inclusive.
#[derive(Debug, Clone)]
pub struct LoopSpan {
    /// Line of the loop keyword.
    pub start: usize,
    /// Line of the body's closing brace.
    pub end: usize,
}

/// Structural facts recovered from blanked code by brace counting.
#[derive(Debug, Default)]
pub struct Structure {
    /// All function spans, sorted by start line.
    pub fns: Vec<FnSpan>,
    /// All loop-body spans, sorted by start line.
    pub loops: Vec<LoopSpan>,
}

impl Structure {
    /// Innermost function containing `line` (0-based).
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns.iter().filter(|f| f.start <= line && line <= f.end).min_by_key(|f| f.end - f.start)
    }

    /// Is `line` inside any loop body?
    pub fn in_loop(&self, line: usize) -> bool {
        self.loops.iter().any(|l| l.start <= line && line <= l.end)
    }
}

#[derive(Debug, Clone)]
enum Pending {
    Fn { name: String, is_test: bool, start: usize },
    Loop { start: usize },
    TestMod,
}

/// Recover functions, test regions, and loop bodies from scanned lines.
///
/// Heuristic but reliable on rustfmt-formatted code: `fn name` opens a
/// pending item that binds to the next `{`; `#[test]` (and friends like
/// `#[tokio::test]`) marks the next `fn`; `#[cfg(test)]` marks the next
/// `mod` body as a test region; `for`/`while`/`loop` keywords bind to
/// their body braces, with `impl … for` lines excluded.
pub fn structure(lines: &[Line]) -> Structure {
    let mut st = Structure::default();
    let mut depth: i64 = 0;
    let mut pending: Vec<Pending> = Vec::new();
    let mut open: Vec<(Pending, i64)> = Vec::new();
    let mut test_attr = false;
    let mut cfg_test_attr = false;
    let mut test_region_depth: Option<i64> = None;

    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        if code.contains("#[test]") || code.contains("test)]") && code.contains("#[cfg(") {
            if code.contains("#[test]") {
                test_attr = true;
            }
            if code.contains("#[cfg(") && code.contains("test)]") {
                cfg_test_attr = true;
            }
        }
        let words: Vec<&str> = code
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .filter(|w| !w.is_empty())
            .collect();
        if let Some(name) = fn_name(code) {
            pending.push(Pending::Fn {
                name,
                is_test: test_attr || test_region_depth.is_some(),
                start: i,
            });
            test_attr = false;
        }
        if cfg_test_attr && words.contains(&"mod") {
            pending.push(Pending::TestMod);
            cfg_test_attr = false;
        }
        let is_impl_line = code.trim_start().starts_with("impl");
        if !is_impl_line
            && (words.contains(&"while")
                || words.contains(&"loop")
                || (words.contains(&"for") && !code.contains(" for<")))
        {
            pending.push(Pending::Loop { start: i });
        }

        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(p) = pending.pop() {
                        if matches!(p, Pending::TestMod) && test_region_depth.is_none() {
                            test_region_depth = Some(depth);
                        }
                        open.push((p, depth));
                    }
                }
                '}' => {
                    while open.last().is_some_and(|(_, d)| *d == depth) {
                        let (p, _) = open.pop().expect("checked non-empty");
                        match p {
                            Pending::Fn { name, is_test, start } => {
                                st.fns.push(FnSpan { name, start, end: i, is_test });
                            }
                            Pending::Loop { start } => st.loops.push(LoopSpan { start, end: i }),
                            Pending::TestMod => {}
                        }
                    }
                    if test_region_depth == Some(depth) {
                        test_region_depth = None;
                    }
                    depth -= 1;
                }
                ';' => {
                    // a bodiless declaration (`fn f() -> T;` in a trait,
                    // `for` consumed by a type bound) dies at `;` when no
                    // brace has claimed it
                    pending.clear();
                }
                _ => {}
            }
        }
    }

    // unbalanced braces shouldn't happen on real source, but never lose a
    // span over it
    while let Some((p, _)) = open.pop() {
        if let Pending::Fn { name, is_test, start } = p {
            st.fns.push(FnSpan { name, start, end: lines.len().saturating_sub(1), is_test });
        }
    }
    st.fns.sort_by_key(|f| f.start);
    st.loops.sort_by_key(|l| l.start);
    st
}

/// Extract the identifier following a `fn ` keyword on this line, if any.
fn fn_name(code: &str) -> Option<String> {
    let mut rest = code;
    loop {
        let idx = rest.find("fn ")?;
        let before_ok = idx == 0
            || !rest[..idx].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[idx + 3..];
        if before_ok {
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        rest = after;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src =
            "let x = \"panic!(\"; // panic!( in a comment\nlet y = 1; /* .unwrap( */ let z = 2;\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("panic!("));
        assert_eq!(lines[0].comments.len(), 1);
        assert!(lines[0].comments[0].contains("panic!( in a comment"));
        assert!(!lines[1].code.contains(".unwrap("));
        assert!(lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let a = r#\"has .expect( inside\"#;\nlet b = 'x';\nlet c: &'a str = s;\nlet d = b\"bytes .unwrap(\";\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains(".expect("));
        assert!(lines[1].code.contains("let b ="));
        assert!(lines[2].code.contains("&'a str"));
        assert!(!lines[3].code.contains(".unwrap("));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let lines = scan(src);
        assert!(lines[0].code.contains('a'));
        assert!(lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("comment"));
    }

    #[test]
    fn fn_spans_and_test_regions() {
        let src = "\
fn alpha() {
    let x = 1;
}
#[cfg(test)]
mod tests {
    #[test]
    fn beta() {
        assert!(true);
    }
}
";
        let st = structure(&scan(src));
        let alpha = st.fns.iter().find(|f| f.name == "alpha").unwrap();
        assert!(!alpha.is_test);
        assert_eq!((alpha.start, alpha.end), (0, 2));
        let beta = st.fns.iter().find(|f| f.name == "beta").unwrap();
        assert!(beta.is_test);
    }

    #[test]
    fn loop_spans_exclude_impl_for() {
        let src = "\
impl Foo for Bar {
    fn run(&self) {
        for i in 0..3 {
            work(i);
        }
    }
}
";
        let st = structure(&scan(src));
        assert_eq!(st.loops.len(), 1);
        assert_eq!((st.loops[0].start, st.loops[0].end), (2, 4));
        assert!(st.in_loop(3));
        assert!(!st.in_loop(1));
        assert_eq!(st.enclosing_fn(3).unwrap().name, "run");
    }
}
