//! Lint driver: walk the workspace, run every rule, apply waivers,
//! render findings (human or JSON), and decide the exit code.
//!
//! Waiver grammar, checked here:
//!
//! ```text
//! // audit-allow(rule-id): reason the policy does not apply here
//! ```
//!
//! on the finding's line or in the contiguous comment block directly
//! above it. The reason after the colon is mandatory: a waiver is a
//! reviewed decision, and the reason is what gets reviewed.

use crate::rules::{self, RawFinding, Rule};
use crate::scan;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A reportable finding after waiver filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (waiver key).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Offending code, trimmed.
    pub snippet: String,
    /// Rule-specific explanation.
    pub message: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived waiver filtering.
    pub findings: Vec<Finding>,
    /// Count of suppressed (properly waived) violations.
    pub waived: usize,
    /// Count of files scanned.
    pub files: usize,
}

/// Lint the workspace rooted at `root`. Scans every `crates/*/src/**/*.rs`
/// with the token rules and every `crates/*/Cargo.toml` with the
/// dependency policy.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let registry = rules::registry();
    let mut report = LintReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for krate in crate_dirs {
        let manifest = krate.join("Cargo.toml");
        if manifest.is_file() {
            lint_manifest(root, &manifest, &mut report)?;
        }
        let src = krate.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            collect_rs(&src, &mut files)?;
            files.sort();
            for f in files {
                lint_rust_file(root, &f, &registry, &mut report)?;
            }
        }
    }
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn relpath(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
}

fn lint_rust_file(
    root: &Path,
    path: &Path,
    registry: &[Rule],
    report: &mut LintReport,
) -> std::io::Result<()> {
    let source = fs::read_to_string(path)?;
    let rel = relpath(root, path);
    let lines = scan::scan(&source);
    let st = scan::structure(&lines);
    report.files += 1;
    for rule in registry {
        for raw in (rule.check)(&rel, &lines, &st) {
            apply_waiver(rule.id, &rel, &lines, raw, report);
        }
    }
    Ok(())
}

fn lint_manifest(root: &Path, path: &Path, report: &mut LintReport) -> std::io::Result<()> {
    let source = fs::read_to_string(path)?;
    let rel = relpath(root, path);
    report.files += 1;
    for raw in rules::dep_policy(&rel, &source) {
        // Cargo.toml waivers: `# audit-allow(dep-policy): reason` on the
        // same line or the line above
        let waiver = toml_waiver(&source, raw.line, "dep-policy");
        match waiver {
            Waiver::Valid => report.waived += 1,
            Waiver::MissingReason => report.findings.push(Finding {
                rule: "dep-policy".into(),
                file: rel.clone(),
                line: raw.line + 1,
                snippet: raw.snippet,
                message: "audit-allow waiver is missing its reason".into(),
            }),
            Waiver::None => report.findings.push(Finding {
                rule: "dep-policy".into(),
                file: rel.clone(),
                line: raw.line + 1,
                snippet: raw.snippet,
                message: raw.message,
            }),
        }
    }
    Ok(())
}

enum Waiver {
    None,
    Valid,
    MissingReason,
}

/// Look for `audit-allow(rule): reason` in a set of comment strings.
fn waiver_in(comments: &[String], rule: &str) -> Waiver {
    let key = format!("audit-allow({rule})");
    for c in comments {
        if let Some(idx) = c.find(&key) {
            let rest = &c[idx + key.len()..];
            let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
            return if reason.is_empty() { Waiver::MissingReason } else { Waiver::Valid };
        }
    }
    Waiver::None
}

/// Waiver lookup for a finding at `raw.line`: same line, then the
/// contiguous comment-only block directly above.
fn apply_waiver(
    rule_id: &str,
    rel: &str,
    lines: &[scan::Line],
    raw: RawFinding,
    report: &mut LintReport,
) {
    let mut verdict = waiver_in(&lines[raw.line].comments, rule_id);
    if matches!(verdict, Waiver::None) {
        let mut j = raw.line;
        while j > 0 {
            j -= 1;
            let l = &lines[j];
            if !l.code.trim().is_empty() || l.comments.is_empty() {
                break;
            }
            verdict = waiver_in(&l.comments, rule_id);
            if !matches!(verdict, Waiver::None) {
                break;
            }
        }
    }
    match verdict {
        Waiver::Valid => report.waived += 1,
        Waiver::MissingReason => report.findings.push(Finding {
            rule: rule_id.into(),
            file: rel.into(),
            line: raw.line + 1,
            snippet: raw.snippet,
            message: "audit-allow waiver is missing its reason".into(),
        }),
        Waiver::None => report.findings.push(Finding {
            rule: rule_id.into(),
            file: rel.into(),
            line: raw.line + 1,
            snippet: raw.snippet,
            message: raw.message,
        }),
    }
}

fn toml_waiver(source: &str, line: usize, rule: &str) -> Waiver {
    let lines: Vec<&str> = source.lines().collect();
    let comment_of = |i: usize| -> Option<String> {
        lines.get(i).and_then(|l| l.split_once('#')).map(|(_, c)| c.to_string())
    };
    let candidates: Vec<String> = [comment_of(line), line.checked_sub(1).and_then(comment_of)]
        .into_iter()
        .flatten()
        .collect();
    waiver_in(&candidates, rule)
}

// --- rendering -------------------------------------------------------------

/// Render findings for humans.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        let _ = writeln!(out, "    {}", f.snippet);
    }
    let _ = writeln!(
        out,
        "audit lint: {} file(s), {} finding(s), {} waived",
        report.files,
        report.findings.len(),
        report.waived
    );
    out
}

/// Render findings as a JSON array (machine-readable; stable field set).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"snippet\":{},\"message\":{}}}",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.snippet),
            json_str(&f.message)
        );
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_source(relpath: &str, src: &str) -> LintReport {
        let registry = rules::registry();
        let lines = scan::scan(src);
        let st = scan::structure(&lines);
        let mut report = LintReport { files: 1, ..Default::default() };
        for rule in &registry {
            for raw in (rule.check)(relpath, &lines, &st) {
                apply_waiver(rule.id, relpath, &lines, raw, &mut report);
            }
        }
        report
    }

    #[test]
    fn waiver_on_same_line_suppresses() {
        let src = "fn read_x(b: &[u8]) -> u8 {\n    b.first().copied().unwrap() // audit-allow(wire-panic): checked non-empty by caller\n}\n";
        let r = lint_source("crates/dist/src/proto.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn waiver_block_above_suppresses() {
        let src = "fn read_x(b: &[u8]) -> u8 {\n    // audit-allow(wire-panic): slice length was\n    // validated two lines up\n    b.first().copied().unwrap()\n}\n";
        let r = lint_source("crates/dist/src/proto.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let src = "fn read_x(b: &[u8]) -> u8 {\n    b.first().copied().unwrap() // audit-allow(wire-panic)\n}\n";
        let r = lint_source("crates/dist/src/proto.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("missing its reason"));
    }

    #[test]
    fn wrong_rule_waiver_does_not_suppress() {
        let src = "fn read_x(b: &[u8]) -> u8 {\n    b.first().copied().unwrap() // audit-allow(loop-instant): wrong rule\n}\n";
        let r = lint_source("crates/dist/src/proto.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "wire-panic");
    }

    #[test]
    fn obs_handle_cache_flags_lookup_in_loop() {
        let src = "fn drain(reg: &Registry, xs: &[u64]) {\n    for x in xs {\n        reg.counter(\"iam_x_total\", &[]).add(*x);\n    }\n}\n";
        let r = lint_source("crates/serve/src/service.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "obs-handle-cache");
        assert!(r.findings[0].message.contains("a loop"));
    }

    #[test]
    fn obs_handle_cache_flags_lookup_in_span_fn() {
        let src = "fn hot(reg: &Registry) {\n    let _s = iam_obs::span!(\"infer.query\");\n    reg.histogram(\"iam_x_ms\", &[], &B).observe(1);\n}\n";
        let r = lint_source("crates/core/src/infer.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("span-instrumented"));
    }

    #[test]
    fn fused_forward_flags_adhoc_quantized_table_access() {
        // touching quantized storage outside the accumulate/build choke
        // points bypasses the canonical summation order
        let src = "fn sneaky_read(t: &SlotTable, tok: usize) -> f32 {\n    match t {\n        SlotTable::Int8 { q, scale, zero } => zero[tok] + scale[tok] * q[tok] as f32,\n        _ => 0.0,\n    }\n}\n";
        let r = lint_source("crates/nn/src/made.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert!(r.findings[0].message.contains("choke point"));
        // the same code in any other file is out of the rule's scope
        assert!(lint_source("crates/core/src/infer.rs", src).findings.is_empty());
    }

    #[test]
    fn fused_forward_allows_quantized_choke_points() {
        // the dequantize-on-accumulate kernel, quantize/build helpers, and
        // type declarations are the sanctioned surface
        let ok = "enum SlotTable {\n    F16(Vec<u16>),\n    Int8 { q: Vec<u8>, scale: Vec<f32>, zero: Vec<f32> },\n}\nfn accumulate_row(t: &SlotTable) {\n    if let SlotTable::F16(v) = t { let _ = f16_bits_to_f32(v[0]); }\n}\nfn quantize_slot() -> SlotTable {\n    SlotTable::F16(vec![f32_to_f16_bits(0.0)])\n}\n";
        let r = lint_source("crates/nn/src/made.rs", ok);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn obs_handle_cache_allows_constructors_and_waivers() {
        // cold constructor: no loop, no span — the cached-handle pattern
        let cold = "fn new(reg: &Registry) -> Probes {\n    Probes { hits: reg.counter(\"iam_hits_total\", &[]) }\n}\n";
        assert!(lint_source("crates/core/src/probes.rs", cold).findings.is_empty());
        // waiver syntax works for this rule like any other
        let waived = "fn drain(reg: &Registry, xs: &[u64]) {\n    for x in xs {\n        reg.counter(\"iam_x_total\", &[]).add(*x); // audit-allow(obs-handle-cache): cold shutdown path, runs once\n    }\n}\n";
        let r = lint_source("crates/serve/src/service.rs", waived);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "wire-panic".into(),
                file: "a/b.rs".into(),
                line: 3,
                snippet: "x.unwrap() // \"quoted\"".into(),
                message: "bad".into(),
            }],
            waived: 0,
            files: 1,
        };
        let j = render_json(&report);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"line\":3"));
    }
}
