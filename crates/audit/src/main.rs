//! `iam-audit` — workspace correctness tooling.
//!
//! ```text
//! cargo run -p iam-audit -- lint [--json] [--rules]
//! cargo run -p iam-audit -- fuzz [--target proto|persist|line|sql|all]
//!                                [--iters N] [--seed N] [--save-crashes]
//! ```
//!
//! `lint` scans every workspace crate with the repo-specific rule
//! registry (see [`rules`]) and exits 1 if any unwaived finding remains.
//! `fuzz` runs the seeded structure-aware fuzzer (see [`fuzz`]) and exits
//! 1 if any target panicked; with `--save-crashes` the offending inputs
//! land in `crates/dist/tests/corpus/` where the replay test picks them
//! up.

mod fuzz;
mod lint;
mod rules;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

/// Workspace root: this crate lives at `<root>/crates/audit`.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: iam-audit <command>\n\
         \n\
         commands:\n\
         \x20 lint [--json] [--rules]      run the workspace lint pass\n\
         \x20 fuzz [--target T] [--iters N] [--seed N] [--save-crashes]\n\
         \x20                              fuzz T in proto|persist|line|sql|all\n\
         \x20                              (default: all, 1000 iters, seed 1)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        _ => usage(),
    }
}

fn cmd_lint(flags: &[String]) -> ExitCode {
    if flags.iter().any(|f| f == "--rules") {
        for rule in rules::registry() {
            println!("{:<16} {}", rule.id, rule.description);
        }
        println!("{:<16} workspace manifests: deps must be workspace/path", "dep-policy");
        return ExitCode::SUCCESS;
    }
    let report = match lint::lint_workspace(&workspace_root()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iam-audit: lint failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flags.iter().any(|f| f == "--json") {
        println!("{}", lint::render_json(&report));
    } else {
        print!("{}", lint::render_text(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_fuzz(flags: &[String]) -> ExitCode {
    let mut target = "all".to_string();
    let mut iters: u64 = 1000;
    let mut seed: u64 = 1;
    let mut save_crashes = false;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        let mut grab = |name: &str| -> Option<String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("iam-audit: {name} needs a value");
            }
            v.cloned()
        };
        match f.as_str() {
            "--target" => match grab("--target") {
                Some(v) => target = v,
                None => return ExitCode::from(2),
            },
            "--iters" => match grab("--iters").and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => return ExitCode::from(2),
            },
            "--seed" => match grab("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return ExitCode::from(2),
            },
            "--save-crashes" => save_crashes = true,
            other => {
                eprintln!("iam-audit: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let corpus = workspace_root().join("crates/dist/tests/corpus");
    let reports = match fuzz::run(&target, iters, seed, save_crashes.then_some(corpus.as_path())) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iam-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;
    for rep in &reports {
        println!(
            "fuzz {}: {} iters (seed {seed}), {} crash(es)",
            rep.target,
            rep.iters,
            rep.crashes.len()
        );
        for c in &rep.crashes {
            failed = true;
            println!("  CRASH [{} bytes] {}", c.input.len(), c.context);
        }
    }
    if failed {
        if save_crashes {
            println!("crash inputs written to {}", corpus.display());
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
