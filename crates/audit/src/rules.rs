//! The lint rule registry.
//!
//! Each rule is a pure function from a scanned file (path, blanked lines,
//! recovered structure) to raw findings. Rules are deliberately narrow:
//! they encode *this repository's* correctness policies — which files
//! handle untrusted bytes, which call paths must stay panic-free, which
//! summation order the fused inference path must preserve — rather than
//! general style. Style is clippy's job; these are the policies clippy
//! cannot know.
//!
//! Waivers: a finding is suppressed by a comment `audit-allow(rule-id):
//! reason` on the same line or in the contiguous comment block directly
//! above it. The reason is mandatory — a waiver without one is itself a
//! finding ([`crate::lint`] enforces that).

use crate::scan::{Line, Structure};

/// A rule violation before waiver filtering.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 0-based line index.
    pub line: usize,
    /// The offending code (trimmed).
    pub snippet: String,
    /// Why this is a violation.
    pub message: String,
}

/// One lint rule.
pub struct Rule {
    /// Stable identifier, used in waiver comments and JSON output.
    pub id: &'static str,
    /// One-line description for `lint --rules`.
    pub description: &'static str,
    /// Produce raw findings for one scanned `.rs` file. `relpath` is
    /// workspace-relative with `/` separators.
    pub check: fn(relpath: &str, lines: &[Line], st: &Structure) -> Vec<RawFinding>,
}

/// All registered rules, in reporting order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "wire-panic",
            description: "no unwrap/expect/panic reachable from untrusted input \
                          (serve::net, serve::sql, dist::proto, dist::worker, \
                          sql parser, persist load path)",
            check: wire_panic,
        },
        Rule {
            id: "wire-int-cast",
            description: "no unchecked `as` narrowing casts in wire decoding \
                          (use try_from or a bounds-checked helper)",
            check: wire_int_cast,
        },
        Rule {
            id: "loop-instant",
            description: "no Instant::now() inside span-instrumented inner loops \
                          (spans already time the region; syscalls in hot loops skew it)",
            check: loop_instant,
        },
        Rule {
            id: "fused-forward",
            description: "no direct layer-1 Linear::forward in fused inference paths \
                          (canonical summation order requires the grouped kernels)",
            check: fused_forward,
        },
        Rule {
            id: "obs-handle-cache",
            description: "no registry handle lookups (counter/gauge/histogram) inside \
                          loops or span-instrumented functions — each lookup takes the \
                          registry lock; resolve handles once into a cached \
                          OnceLock/struct field",
            check: obs_handle_cache,
        },
    ]
}

// --- wire-panic ------------------------------------------------------------

/// Files whose every non-test function faces untrusted bytes.
const WIRE_FILES: &[&str] = &[
    "crates/serve/src/net.rs",
    "crates/serve/src/sql.rs",
    "crates/dist/src/proto.rs",
    "crates/dist/src/worker.rs",
    "crates/sql/src/lexer.rs",
    "crates/sql/src/parser.rs",
    "crates/sql/src/lower.rs",
];

/// In `persist.rs` only the load path parses untrusted bytes (`save` is
/// fed by in-process state); scope to the deserialisation functions.
const PERSIST_LOAD_FNS: &[&str] = &[
    "load",
    "load_framed",
    "read_reducer",
    "r_u64",
    "r_f64",
    "r_len",
    "r_vec_f64",
    "r_vec_f32",
    "r_str",
    "r_bytes_chunked",
];

const PANIC_PATTERNS: &[&str] =
    &[".unwrap(", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

fn wire_panic(relpath: &str, lines: &[Line], st: &Structure) -> Vec<RawFinding> {
    let whole_file = WIRE_FILES.contains(&relpath);
    let persist = relpath == "crates/core/src/persist.rs";
    if !whole_file && !persist {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        for pat in PANIC_PATTERNS {
            if !line.code.contains(pat) {
                continue;
            }
            let Some(f) = st.enclosing_fn(i) else { continue };
            if f.is_test {
                continue;
            }
            if persist && !PERSIST_LOAD_FNS.contains(&f.name.as_str()) {
                continue;
            }
            out.push(RawFinding {
                line: i,
                snippet: line.code.trim().to_string(),
                message: format!(
                    "`{pat}` in `{}` is reachable from untrusted input; \
                     return a typed error instead",
                    f.name
                ),
            });
            break; // one finding per line is enough
        }
    }
    out
}

// --- wire-int-cast ---------------------------------------------------------

/// Target types an `as` cast may silently truncate into.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32"];

/// Is this function part of a wire-decoding path? (Encoders cast widening
/// by construction; decoders must bounds-check.)
fn is_decode_fn(name: &str) -> bool {
    name.starts_with("decode")
        || name.starts_with("read")
        || name.starts_with("load")
        || name.starts_with("parse")
        || name.starts_with("r_")
        || matches!(name, "take" | "u8" | "u64" | "f64" | "len" | "str" | "bytes" | "fill")
}

fn wire_int_cast(relpath: &str, lines: &[Line], st: &Structure) -> Vec<RawFinding> {
    if !WIRE_FILES.contains(&relpath) && relpath != "crates/core/src/persist.rs" {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let mut rest: &str = code;
        while let Some(idx) = rest.find(" as ") {
            let after = &rest[idx + 4..];
            let ty: String =
                after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            rest = after;
            if !NARROW_TYPES.contains(&ty.as_str()) {
                continue;
            }
            let Some(f) = st.enclosing_fn(i) else { continue };
            if f.is_test || !is_decode_fn(&f.name) {
                continue;
            }
            out.push(RawFinding {
                line: i,
                snippet: code.trim().to_string(),
                message: format!(
                    "`as {ty}` in decode fn `{}` can truncate wire-controlled \
                     values; use try_from or a bounds-checked helper",
                    f.name
                ),
            });
        }
    }
    out
}

// --- loop-instant ----------------------------------------------------------

/// Crates whose `src/` trees carry span instrumentation worth protecting.
const SPAN_CRATES: &[&str] =
    &["crates/core/src/", "crates/nn/src/", "crates/serve/src/", "crates/dist/src/"];

fn loop_instant(relpath: &str, lines: &[Line], st: &Structure) -> Vec<RawFinding> {
    if !SPAN_CRATES.iter().any(|p| relpath.starts_with(p)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !line.code.contains("Instant::now()") || !st.in_loop(i) {
            continue;
        }
        let Some(f) = st.enclosing_fn(i) else { continue };
        if f.is_test {
            continue;
        }
        let fn_has_span =
            lines[f.start..=f.end.min(lines.len() - 1)].iter().any(|l| l.code.contains("span!("));
        if !fn_has_span {
            continue;
        }
        out.push(RawFinding {
            line: i,
            snippet: line.code.trim().to_string(),
            message: format!(
                "Instant::now() inside a loop of span-instrumented `{}`; \
                 the span already times this region — drop the manual timer \
                 or hoist it out of the loop",
                f.name
            ),
        });
    }
    out
}

// --- fused-forward ---------------------------------------------------------

fn fused_forward(relpath: &str, lines: &[Line], st: &Structure) -> Vec<RawFinding> {
    // (file, pattern, message): the canonical-summation-order policy — the
    // fused inference path must route layer 1 through the grouped kernels
    // so estimates stay bit-identical between fused and unfused paths
    let checks: &[(&str, &str, &str)] = &[
        (
            "crates/nn/src/made.rs",
            "layers[0].forward(",
            "layer 1 must use forward_grouped / forward_grouped_no_cache: \
             plain forward changes the summation order and breaks bit-exact \
             agreement with the fused token tables",
        ),
        (
            "crates/core/src/infer.rs",
            ".forward(",
            "the inference hot path must not call the network's forward \
             directly; go through the fused layer-1 tables (prepare_inference)",
        ),
    ];
    // quantized-table choke points: the SlotTable storage variants (and the
    // f16 bit-shuffle helpers) may only be touched inside the grouped
    // dequantize-on-accumulate kernel and the build/quantize helpers.
    // Ad-hoc indexing of quantized tables anywhere else could bypass the
    // canonical per-slot summation order that keeps quantized estimates a
    // values-only (never order) deviation from the f32 golden path.
    const QUANT_PATTERNS: &[&str] =
        &["SlotTable::F16", "SlotTable::Int8", "f16_bits_to_f32(", "f32_to_f16_bits("];
    const QUANT_FNS: &[&str] = &[
        "accumulate_row",
        "accumulate_row_scalar",
        "accumulate_row_avx2",
        "size_bytes",
        "quantize_slot",
        "f32_to_f16_bits",
        "f16_bits_to_f32",
    ];

    let mut out = Vec::new();
    for &(file, pat, msg) in checks {
        if relpath != file {
            continue;
        }
        for (i, line) in lines.iter().enumerate() {
            if !line.code.contains(pat) {
                continue;
            }
            if st.enclosing_fn(i).is_none_or(|f| f.is_test) {
                continue;
            }
            out.push(RawFinding {
                line: i,
                snippet: line.code.trim().to_string(),
                message: msg.to_string(),
            });
        }
    }
    if relpath == "crates/nn/src/made.rs" {
        for (i, line) in lines.iter().enumerate() {
            if !QUANT_PATTERNS.iter().any(|p| line.code.contains(p)) {
                continue;
            }
            // enum/type declarations carry no table access; only code
            // inside a non-allowlisted function is a bypass
            let Some(f) = st.enclosing_fn(i) else { continue };
            if f.is_test || QUANT_FNS.contains(&f.name.as_str()) {
                continue;
            }
            out.push(RawFinding {
                line: i,
                snippet: line.code.trim().to_string(),
                message: format!(
                    "quantized fused-table storage touched in `{}`; all reads must \
                     route through the grouped-summation choke point \
                     (SlotTable::accumulate_row) or the quantize/build helpers so \
                     the canonical per-slot summation order survives quantization",
                    f.name
                ),
            });
        }
    }
    out
}

// --- obs-handle-cache ------------------------------------------------------

/// Registry lookup calls that take the registry's lock and walk its map.
/// Fine at construction time; inside a loop or a span-instrumented (i.e.
/// hot) function they belong in a cached handle resolved once.
const HANDLE_LOOKUPS: &[&str] = &[".counter(\"", ".gauge(\"", ".float_gauge(\"", ".histogram(\""];

fn obs_handle_cache(relpath: &str, lines: &[Line], st: &Structure) -> Vec<RawFinding> {
    if !SPAN_CRATES.iter().any(|p| relpath.starts_with(p)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !HANDLE_LOOKUPS.iter().any(|p| line.code.contains(p)) {
            continue;
        }
        let Some(f) = st.enclosing_fn(i) else { continue };
        if f.is_test {
            continue;
        }
        let fn_has_span =
            lines[f.start..=f.end.min(lines.len() - 1)].iter().any(|l| l.code.contains("span!("));
        if !st.in_loop(i) && !fn_has_span {
            continue;
        }
        let place = if st.in_loop(i) { "a loop" } else { "the span-instrumented" };
        out.push(RawFinding {
            line: i,
            snippet: line.code.trim().to_string(),
            message: format!(
                "registry handle lookup inside {place} fn `{}`; each lookup \
                 locks the registry — resolve the handle once (OnceLock \
                 static or a field built at construction) and reuse it",
                f.name
            ),
        });
    }
    out
}

// --- dep-policy (Cargo.toml, not token-scanned) ----------------------------

/// Check one workspace-crate manifest: every dependency must resolve
/// inside the workspace (`workspace = true` or `path = …`) — the build
/// environment is offline and vendored, so a registry `version` or `git`
/// dependency would only ever break the build for whoever pulls next.
pub fn dep_policy(relpath: &str, source: &str) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (i, raw) in source.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line.contains("dependencies");
            if line.starts_with("[patch") {
                out.push(RawFinding {
                    line: i,
                    snippet: raw.trim().to_string(),
                    message: "patch sections bypass the vendored workspace graph".into(),
                });
            }
            continue;
        }
        if !in_deps || line.is_empty() {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else { continue };
        let (name, spec) = (name.trim(), spec.trim());
        let ok = spec.contains("workspace = true") || spec.contains("path =");
        if !ok {
            out.push(RawFinding {
                line: i,
                snippet: raw.trim().to_string(),
                message: format!(
                    "dependency `{name}` in {relpath} must come from the \
                     workspace (workspace = true or path = …); registry/git \
                     deps cannot resolve in the offline vendored build"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_policy_flags_registry_and_git_deps() {
        let bad = "[dependencies]\nserde = \"1.0\"\nfoo = { git = \"https://x\" }\nok = { workspace = true }\nlocal = { path = \"../x\" }\n";
        let f = dep_policy("crates/x/Cargo.toml", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("serde"));
        assert!(f[1].message.contains("foo"));
    }

    #[test]
    fn dep_policy_ignores_package_section() {
        let good = "[package]\nname = \"x\"\nversion.workspace = true\n\n[dependencies]\niam-core = { workspace = true }\n";
        assert!(dep_policy("crates/x/Cargo.toml", good).is_empty());
    }
}
