//! Deterministic, seeded, structure-aware mutational fuzzing for the
//! workspace's four untrusted-byte surfaces:
//!
//! * `proto`   — `iam_dist::proto` frame + message decoding
//! * `persist` — `IamEstimator::load_framed` snapshot parsing (and, on
//!   parses that succeed, estimation — which exercises the debug
//!   invariant layer on hostile-but-checksummed models)
//! * `line`    — `iam_serve::net::parse_query` line protocol
//! * `sql`     — `iam_sql::parse` statement parsing (and, on parses that
//!   succeed, the Display round trip: canonical text must re-parse and
//!   re-render to a fixpoint)
//!
//! No external fuzzing engine and no nightly: inputs come from a
//! [`SplitMix64`] stream, so a run is exactly reproducible from
//! `(target, seed, iters)`. "Structure-aware" means mutations start from
//! *valid* artifacts — encoded messages, a real framed snapshot, real
//! query lines — and corrupt them the way transports do (bit flips,
//! flipped length prefixes, truncation) **plus** the one mutation class
//! naive fuzzers never reach: payload corruption with the checksum
//! *recomputed*, so the parser behind the checksum gate sees hostile
//! bytes too.
//!
//! Every iteration runs under `catch_unwind`: any panic — including a
//! tripped `iam_core::invariant` check — is a crash, and the offending
//! input is written to the regression corpus for replay.

use iam_core::{persist, IamConfig, IamEstimator};
use iam_data::{synth::Dataset, Interval, RangeQuery, SelectivityEstimator};
use iam_dist::proto::{read_msg, write_msg, Msg, MAX_FRAME};
use iam_serve::net::parse_query;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// SplitMix64: tiny, seedable, high-quality 64-bit stream.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded stream; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// One crashing input, kept for the regression corpus.
#[derive(Debug)]
pub struct Crash {
    /// The raw input bytes that triggered the panic.
    pub input: Vec<u8>,
    /// Iteration index and panic payload, for the report.
    pub context: String,
}

/// Result of fuzzing one target.
#[derive(Debug)]
pub struct FuzzReport {
    /// Target name (`proto` / `persist` / `line` / `sql`).
    pub target: String,
    /// Iterations executed.
    pub iters: u64,
    /// Panics caught (empty on a clean run).
    pub crashes: Vec<Crash>,
}

/// Extract a printable panic message from a `catch_unwind` payload.
fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<String>()
        .cloned()
        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Apply 1–8 random byte-level mutations in place: flips, overwrites,
/// and little-endian length-field-style splices.
fn mutate(rng: &mut SplitMix64, buf: &mut Vec<u8>) {
    if buf.is_empty() {
        return;
    }
    let n = 1 + rng.below(8) as usize;
    for _ in 0..n {
        match rng.below(4) {
            0 => {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] ^= 1 << rng.below(8);
            }
            1 => {
                let i = rng.below(buf.len() as u64) as usize;
                buf[i] = rng.next_u64() as u8;
            }
            2 => {
                // splice a hostile little-endian u32 (tiny / huge / off-by-
                // one lengths are the interesting frontier for codecs)
                if buf.len() >= 4 {
                    let i = rng.below((buf.len() - 3) as u64) as usize;
                    let v: u32 = match rng.below(4) {
                        0 => 0,
                        1 => u32::MAX,
                        2 => rng.next_u64() as u32,
                        _ => (buf.len() as u32).wrapping_add(rng.below(8) as u32),
                    };
                    buf[i..i + 4].copy_from_slice(&v.to_le_bytes());
                }
            }
            _ => {
                // truncate or extend at the tail
                if rng.below(2) == 0 {
                    let keep = rng.below(buf.len() as u64 + 1) as usize;
                    buf.truncate(keep);
                    if buf.is_empty() {
                        return;
                    }
                } else {
                    let extra_len = rng.below(16) as usize + 1;
                    let extra = rng.bytes(extra_len);
                    buf.extend_from_slice(&extra);
                }
            }
        }
    }
}

// --- proto target ----------------------------------------------------------

/// Generate a structurally valid message from the RNG stream (floats are
/// drawn from bit patterns, so subnormals/infinities appear; NaN is
/// excluded only where round-trip equality is asserted).
fn gen_msg(rng: &mut SplitMix64) -> Msg {
    let gen_str = |rng: &mut SplitMix64| -> String {
        let len = rng.below(12) as usize;
        (0..len).map(|_| (b'a' + rng.below(26) as u8) as char).collect()
    };
    let gen_f64 = |rng: &mut SplitMix64| -> f64 {
        let v = f64::from_bits(rng.next_u64());
        if v.is_nan() {
            0.5
        } else {
            v
        }
    };
    let gen_query = |rng: &mut SplitMix64| -> RangeQuery {
        let ncols = 1 + rng.below(5) as usize;
        let mut q = RangeQuery::unconstrained(ncols);
        for c in q.cols.iter_mut() {
            if rng.below(2) == 0 {
                *c = Some(Interval {
                    lo: gen_f64(rng),
                    hi: gen_f64(rng),
                    lo_strict: rng.below(2) == 0,
                    hi_strict: rng.below(2) == 0,
                });
            }
        }
        q
    };
    match rng.below(11) {
        0 => Msg::Ping,
        1 => Msg::Pong,
        2 => {
            let blen = rng.below(64) as usize;
            Msg::LoadSnapshot { table: gen_str(rng), label: gen_str(rng), bytes: rng.bytes(blen) }
        }
        3 => Msg::LoadAck { table: gen_str(rng), version: rng.next_u64() },
        4 => Msg::EstimateBatch {
            table: gen_str(rng),
            queries: (0..rng.below(4)).map(|_| gen_query(rng)).collect(),
        },
        5 => Msg::EstimateReply {
            results: (0..rng.below(6))
                .map(|_| if rng.below(2) == 0 { Ok(gen_f64(rng)) } else { Err(gen_str(rng)) })
                .collect(),
        },
        6 => Msg::Version { table: gen_str(rng) },
        7 => Msg::VersionReply { version: rng.next_u64(), label: gen_str(rng) },
        8 => Msg::Shutdown,
        9 => Msg::ShutdownAck,
        _ => Msg::Error { message: gen_str(rng) },
    }
}

fn fuzz_proto(seed: u64, iters: u64) -> FuzzReport {
    let mut rng = SplitMix64::new(seed);
    let mut crashes = Vec::new();
    for i in 0..iters {
        let mode = rng.below(4);
        let input: Vec<u8> = match mode {
            // raw bytes straight at the payload decoder
            0 => {
                let len = rng.below(200) as usize;
                rng.bytes(len)
            }
            // valid payload, then mutated
            1 | 2 => {
                let mut p = gen_msg(&mut rng).encode();
                if mode == 2 {
                    mutate(&mut rng, &mut p);
                }
                p
            }
            // a whole frame (length prefix included), mutated
            _ => {
                let mut wire = Vec::new();
                write_msg(&mut wire, &gen_msg(&mut rng)).expect("vec write cannot fail");
                mutate(&mut rng, &mut wire);
                wire
            }
        };
        let framed = mode == 3;
        let r = catch_unwind(AssertUnwindSafe(|| {
            if framed {
                let _ = read_msg(&mut input.as_slice(), MAX_FRAME);
            } else {
                // decode, and on success assert the codec is canonical:
                // re-encoding must reproduce the exact payload bytes
                if let Ok(msg) = Msg::decode(&input) {
                    let re = msg.encode();
                    assert_eq!(re, input, "decode/encode round trip not canonical");
                }
            }
        }));
        if let Err(e) = r {
            crashes.push(Crash {
                input: if framed {
                    input
                } else {
                    // corpus replay routes `proto-` entries through the
                    // framed reader; wrap the payload so it replays as-is
                    frame(&input)
                },
                context: format!("iter {i} mode {mode}: {}", panic_message(&*e)),
            });
        }
    }
    FuzzReport { target: "proto".into(), iters, crashes }
}

/// Wrap a payload in a valid `[u32 LE length]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(payload.len() + 4);
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(payload);
    wire
}

// --- persist target --------------------------------------------------------

/// Fit the one tiny estimator all persist iterations mutate. Small on
/// purpose: the snapshot stays a few tens of KiB, so 100k checksum
/// recomputations stay cheap.
fn base_snapshot() -> Vec<u8> {
    let table = Dataset::Twi.generate(400, 9);
    let cfg = IamConfig {
        components: 3,
        hidden: vec![16, 16],
        embed_dim: 4,
        epochs: 1,
        samples: 48,
        seed: 21,
        ..IamConfig::default()
    };
    let mut est = IamEstimator::fit(&table, cfg);
    let mut bytes = Vec::new();
    est.save_framed(&mut bytes).expect("vec write cannot fail");
    bytes
}

/// Rewrite the frame's checksum to match its (possibly mutated) payload,
/// and its length field to match the payload it actually carries — the
/// structure-aware step that carries mutations *past* the envelope
/// verification into the inner `IAM1` parser.
fn fix_envelope(frame: &mut [u8]) {
    // layout: IAMF(4) · len u64(8) · payload · fnv1a u64(8)
    if frame.len() < 20 {
        return;
    }
    let payload_len = frame.len() - 20;
    frame[4..12].copy_from_slice(&(payload_len as u64).to_le_bytes());
    let sum = persist::fnv1a(&frame[12..12 + payload_len]);
    let tail = frame.len() - 8;
    frame[tail..].copy_from_slice(&sum.to_le_bytes());
}

fn fuzz_persist(seed: u64, iters: u64) -> FuzzReport {
    let base = base_snapshot();
    let mut rng = SplitMix64::new(seed);
    let mut crashes = Vec::new();
    for i in 0..iters {
        let mut input = base.clone();
        let mode = rng.below(3);
        match mode {
            // blind transport corruption: the checksum gate should catch
            // most of these; none may panic
            0 => mutate(&mut rng, &mut input),
            // structure-aware: corrupt the payload, then *repair* the
            // envelope so the inner parser sees the hostile bytes
            1 => {
                mutate(&mut rng, &mut input);
                fix_envelope(&mut input);
            }
            // hostile envelope around a truncated/garbled tail
            _ => {
                let keep = 4 + rng.below((input.len() - 4) as u64) as usize;
                input.truncate(keep);
                if rng.below(2) == 0 {
                    let extra_len = rng.below(32) as usize;
                    let extra = rng.bytes(extra_len);
                    input.extend_from_slice(&extra);
                }
            }
        }
        let r = catch_unwind(AssertUnwindSafe(|| {
            if let Ok(mut est) = IamEstimator::load_framed(&mut input.as_slice()) {
                // a parse that survives hostile bytes must also *estimate*
                // without tripping an invariant; bound the cost so a
                // mutated sample budget cannot stall the run
                if rng.below(16) == 0 && est.config().samples <= 8192 {
                    let ncols = est.schema.handlers.len();
                    let sel = est.estimate(&RangeQuery::unconstrained(ncols));
                    assert!(
                        (0.0..=1.0).contains(&sel),
                        "selectivity {sel} outside [0,1] from loaded snapshot"
                    );
                }
            }
        }));
        if let Err(e) = r {
            crashes.push(Crash {
                input,
                context: format!("iter {i} mode {mode}: {}", panic_message(&*e)),
            });
        }
    }
    FuzzReport { target: "persist".into(), iters, crashes }
}

// --- line target -----------------------------------------------------------

fn fuzz_line(seed: u64, iters: u64) -> FuzzReport {
    const TEMPLATES: &[&str] = &[
        "0=3 1=2.5..9.0",
        "1=*..0.5 0=-2..*",
        "0=1..10 0=5..20 2=7",
        "3=-1e308..1e308 0=0.0",
        "0=* 1=..",
    ];
    let mut rng = SplitMix64::new(seed);
    let mut crashes = Vec::new();
    for i in 0..iters {
        let input: Vec<u8> = if rng.below(2) == 0 {
            let len = rng.below(120) as usize;
            rng.bytes(len)
        } else {
            let mut b = TEMPLATES[rng.below(TEMPLATES.len() as u64) as usize].as_bytes().to_vec();
            mutate(&mut rng, &mut b);
            b
        };
        let ncols = 1 + rng.below(6) as usize;
        let r = catch_unwind(AssertUnwindSafe(|| {
            let line = String::from_utf8_lossy(&input);
            if let Ok(rq) = parse_query(&line, ncols) {
                assert_eq!(rq.cols.len(), ncols, "parsed query arity mismatch");
            }
        }));
        if let Err(e) = r {
            crashes.push(Crash {
                input,
                context: format!("iter {i} ncols {ncols}: {}", panic_message(&*e)),
            });
        }
    }
    FuzzReport { target: "line".into(), iters, crashes }
}

// --- sql target ------------------------------------------------------------

fn fuzz_sql(seed: u64, iters: u64) -> FuzzReport {
    const TEMPLATES: &[&str] = &[
        "SELECT COUNT(*) FROM twi WHERE c0 = 1 AND c1 BETWEEN 2.5 AND 9",
        "SELECT SUM(c1) FROM twi WHERE c0 >= 0 AND c1 < 1e300",
        "SELECT AVG(c2) FROM t WHERE c2 BETWEEN -1.5 AND 4.25;",
        "EXPLAIN SELECT COUNT(*) FROM a JOIN b ON a.c0 = b.c0 JOIN c ON b.c1 = c.c1 \
         WHERE a.c0 <= 1 AND b.c1 > 0",
        "select count ( * ) from x where c0 between .5 and 1e-300",
        "SELECT COUNT(*) FROM t",
    ];
    let mut rng = SplitMix64::new(seed);
    let mut crashes = Vec::new();
    for i in 0..iters {
        let input: Vec<u8> = if rng.below(3) == 0 {
            let len = rng.below(160) as usize;
            rng.bytes(len)
        } else {
            let mut b = TEMPLATES[rng.below(TEMPLATES.len() as u64) as usize].as_bytes().to_vec();
            mutate(&mut rng, &mut b);
            b
        };
        let r = catch_unwind(AssertUnwindSafe(|| {
            let text = String::from_utf8_lossy(&input);
            if let Ok(stmt) = iam_sql::parse(&text) {
                // whatever survives the parser must round-trip through its
                // canonical rendering — this is what the coordinator
                // forwards to workers, so non-re-parseable output would be
                // a cluster-visible bug, not a cosmetic one
                let rendered = stmt.to_string();
                match iam_sql::parse(&rendered) {
                    Ok(back) => assert_eq!(
                        back.to_string(),
                        rendered,
                        "display is not a fixpoint for {text:?}"
                    ),
                    Err(e) => panic!("canonical text {rendered:?} failed to re-parse: {e}"),
                }
            }
        }));
        if let Err(e) = r {
            crashes.push(Crash { input, context: format!("iter {i}: {}", panic_message(&*e)) });
        }
    }
    FuzzReport { target: "sql".into(), iters, crashes }
}

// --- driver ----------------------------------------------------------------

/// Run one or all targets for `iters` seeded iterations each. Crashing
/// inputs are written to `corpus_dir` (when given) as
/// `<target>-crash-<k>` files, ready for the replay test to pick up.
pub fn run(
    target: &str,
    iters: u64,
    seed: u64,
    corpus_dir: Option<&Path>,
) -> std::io::Result<Vec<FuzzReport>> {
    let targets: Vec<&str> = match target {
        "all" => vec!["proto", "persist", "line", "sql"],
        t => vec![t],
    };
    // fuzzing *expects* panics; keep half a million backtraces off stderr
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut reports = Vec::new();
    for t in targets {
        let rep = match t {
            "proto" => fuzz_proto(seed, iters),
            "persist" => fuzz_persist(seed, iters),
            "line" => fuzz_line(seed, iters),
            "sql" => fuzz_sql(seed, iters),
            other => {
                std::panic::set_hook(prev_hook);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("unknown fuzz target {other:?} (proto|persist|line|sql|all)"),
                ));
            }
        };
        reports.push(rep);
    }
    std::panic::set_hook(prev_hook);
    if let Some(dir) = corpus_dir {
        for rep in &reports {
            for (k, crash) in rep.crashes.iter().enumerate() {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{}-crash-{k}", rep.target));
                std::fs::write(&path, &crash.input)?;
            }
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let mut r = SplitMix64::new(42);
        let b: Vec<u64> = (0..5).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn envelope_fixup_reaches_inner_parser() {
        // corrupt a payload byte, repair the envelope: load must get past
        // the checksum (i.e. fail with a *format* error or succeed, never
        // a checksum error)
        let mut snap = base_snapshot();
        let mid = 12 + (snap.len() - 20) / 2;
        snap[mid] ^= 0xFF;
        fix_envelope(&mut snap);
        if let Err(e) = IamEstimator::load_framed(&mut snap.as_slice()) {
            assert!(
                !e.to_string().contains("checksum"),
                "fixed-up envelope still failed its checksum: {e}"
            );
        }
    }

    #[test]
    fn smoke_each_target_briefly() {
        for rep in run("all", 300, 7, None).unwrap() {
            assert_eq!(rep.iters, 300);
            assert!(rep.crashes.is_empty(), "{}: {:?}", rep.target, rep.crashes);
        }
    }
}
