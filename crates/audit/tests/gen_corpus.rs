//! Regenerates the handcrafted seed entries of the regression corpus at
//! `crates/dist/tests/corpus/`. Ignored by default — the corpus is
//! checked in; run explicitly after changing a wire format:
//!
//! ```text
//! cargo test -p iam-audit --test gen_corpus -- --ignored
//! ```
//!
//! Each entry is a byte-for-byte input the replay test
//! (`crates/dist/tests/corpus_replay.rs`, tier-1) feeds back to the
//! matching parser, pinning a hostile-input class the fuzzer or a past
//! incident surfaced. Fuzzer crash artifacts (`*-crash-*`) land in the
//! same directory via `iam-audit fuzz --save-crashes`.

use iam_core::{persist, IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../dist/tests/corpus")
}

/// `[u32 LE length]` framing used by the dist wire protocol.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::with_capacity(payload.len() + 4);
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(payload);
    wire
}

/// `IAMF` snapshot envelope: magic, u64 LE payload length, payload,
/// FNV-1a-64 checksum — with the checksum *valid*, so the inner parser
/// is what gets tested.
fn envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(b"IAMF");
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&persist::fnv1a(payload).to_le_bytes());
    out
}

#[test]
#[ignore = "writes checked-in corpus files; run after wire-format changes"]
fn regenerate_seed_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, bytes: &[u8]| {
        std::fs::write(dir.join(name), bytes).unwrap();
    };

    // -- proto: frame/message decoding ------------------------------------

    // length prefix u32::MAX: must be rejected against MAX_FRAME before
    // any allocation
    let mut huge = u32::MAX.to_le_bytes().to_vec();
    huge.extend_from_slice(&[0xAA; 16]);
    write("proto-u32max-frame", &huge);

    // valid frame whose LoadSnapshot payload declares a u64::MAX string
    // length: the *inner* length check must fire, not an OOM
    let mut payload = vec![3u8]; // LoadSnapshot tag
    payload.extend_from_slice(&u64::MAX.to_le_bytes());
    write("proto-inner-len", &frame(&payload));

    // frame length larger than the bytes that follow: reader must hit
    // clean EOF, not block or panic
    let mut trunc = 64u32.to_le_bytes().to_vec();
    trunc.extend_from_slice(&[1u8; 10]);
    write("proto-trunc-frame", &trunc);

    // trailing byte after a complete Ping: whole-slice-consumed rule
    write("proto-trailing-bytes", &frame(&[1u8, 0xEE]));

    // -- persist: framed snapshot loading ---------------------------------

    // envelope declares a 1 TiB payload: the length bound must reject it
    // before the chunked reader is even consulted
    let mut dos = b"IAMF".to_vec();
    dos.extend_from_slice(&(1u64 << 40).to_le_bytes());
    write("persist-len-dos", &dos);

    // checksummed envelope whose inner header declares u64::MAX hidden
    // layers: the layer-count bound must fire before any preallocation
    let mut inner = b"IAM1".to_vec();
    for v in [3u64, 0, 1000] {
        inner.extend_from_slice(&v.to_le_bytes()); // components, auto, reduce_threshold
    }
    inner.push(0); // reducer kind: Gmm
    for v in [1u64, 2048] {
        inner.extend_from_slice(&v.to_le_bytes()); // reduce_continuous, factorize_threshold
    }
    inner.extend_from_slice(&u64::MAX.to_le_bytes()); // hidden-layer count
    write("persist-huge-veclen", &envelope(&inner));

    // genuine snapshot truncated mid-payload with the envelope repaired:
    // the inner parser must fail with a clean format/EOF error
    let table = Dataset::Twi.generate(300, 5);
    let cfg = IamConfig {
        components: 3,
        hidden: vec![12, 12],
        embed_dim: 4,
        epochs: 1,
        samples: 32,
        seed: 13,
        ..IamConfig::default()
    };
    let mut est = IamEstimator::fit(&table, cfg);
    let mut framed = Vec::new();
    est.save_framed(&mut framed).unwrap();
    let keep = 12 + (framed.len() - 20) * 3 / 5;
    write("persist-trunc-snapshot", &envelope(&framed[12..keep]));

    // -- line: serve text protocol ----------------------------------------

    // invalid UTF-8 spliced into a structurally plausible query line
    write("line-junk-utf8", b"0=\xff..\xfe 1=*");

    // repeated column with overlapping ranges plus a bare equality
    write("line-dup-col", b"0=1..10 0=5..20 2=7");

    // -- sql: statement parsing -------------------------------------------

    // numeric literal that overflows f64: must be rejected as a parse
    // error, not admitted as ±∞ (which would break canonical re-rendering)
    write("sql-overflow-literal", b"SELECT COUNT(*) FROM t WHERE c0 < 1e309");

    // invalid UTF-8 and truncation mid-keyword around a plausible statement
    write("sql-junk-utf8", b"SELECT COUNT(*) FROM t WHERE c0 BETW\xff\xfeEN 1 AND");
}
