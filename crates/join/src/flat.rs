//! Flattening full-outer-join samples into a single trainable table.
//!
//! Layout: the hub's columns first, then for each dimension table a
//! presence *indicator* column (0/1) followed by that table's content
//! columns. Absent rows are NULL-padded: categorical columns gain a `~null`
//! dictionary entry (sorting last), continuous columns use a sentinel below
//! the real minimum. [`FlatSchema::rewrite`] converts a join query into a
//! [`RangeQuery`] over this layout — requiring the indicator of every
//! joined table and clamping content intervals to the real (non-NULL)
//! value range.

use crate::star::StarSchema;
use crate::workload::JoinQuery;
use iam_data::column::{CatColumn, Column, ContColumn};
use iam_data::{Interval, RangeQuery, SelectivityEstimator, Table};

/// Column bookkeeping for the flat layout.
#[derive(Debug, Clone)]
pub struct FlatSchema {
    /// Number of hub columns.
    pub hub_cols: usize,
    /// Flat index of each dimension's indicator column.
    pub dim_offsets: Vec<usize>,
    /// Real (non-NULL) `(min, max)` per flat column.
    pub bounds: Vec<(f64, f64)>,
    /// Total flat columns.
    pub ncols: usize,
    /// |full outer join| of the schema the sample came from.
    pub foj_size: f64,
}

/// Materialise `n` Exact-Weight FOJ samples into a flat table.
pub fn flatten_foj(star: &StarSchema, n: usize, seed: u64) -> (Table, FlatSchema) {
    let samples = star.sample_foj(n, seed);
    let hub_cols = star.hub.ncols();

    let mut columns: Vec<Column> = Vec::new();
    let mut bounds: Vec<(f64, f64)> = Vec::new();
    let mut dim_offsets = Vec::new();

    let col_bounds = |c: &Column| -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..c.len() {
            let v = c.value_as_f64(r);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    };

    // hub columns (always present)
    for (ci, c) in star.hub.columns.iter().enumerate() {
        bounds.push(col_bounds(c));
        match c {
            Column::Categorical(cc) => {
                let codes = samples.iter().map(|&(m, _)| cc.codes[m as usize]).collect();
                columns.push(Column::Categorical(CatColumn::from_codes(
                    format!("title.{}", cc.name),
                    codes,
                    cc.dict.clone(),
                )));
            }
            Column::Continuous(cc) => {
                let values = samples.iter().map(|&(m, _)| cc.values[m as usize]).collect();
                columns.push(Column::Continuous(ContColumn::new(
                    format!("title.{}", cc.name),
                    values,
                )));
            }
        }
        let _ = ci;
    }

    // dimension columns with indicators and NULL padding
    for (t, dim) in star.dims.iter().enumerate() {
        dim_offsets.push(columns.len());
        let ind_codes: Vec<u32> =
            samples.iter().map(|(_, picks)| u32::from(picks[t].is_some())).collect();
        bounds.push((0.0, 1.0));
        columns.push(Column::Categorical(CatColumn::from_codes(
            format!("{}.__present", dim.table.name),
            ind_codes,
            vec!["0".into(), "1".into()],
        )));
        for c in &dim.table.columns {
            let (lo, hi) = col_bounds(c);
            bounds.push((lo, hi));
            match c {
                Column::Categorical(cc) => {
                    let null_code = cc.dict.len() as u32;
                    let codes = samples
                        .iter()
                        .map(|(_, picks)| picks[t].map_or(null_code, |r| cc.codes[r as usize]))
                        .collect();
                    let mut dict = cc.dict.clone();
                    dict.push("~null".into());
                    columns.push(Column::Categorical(CatColumn::from_codes(
                        format!("{}.{}", dim.table.name, cc.name),
                        codes,
                        dict,
                    )));
                }
                Column::Continuous(cc) => {
                    let sentinel = lo - (hi - lo).max(1.0);
                    let values = samples
                        .iter()
                        .map(|(_, picks)| picks[t].map_or(sentinel, |r| cc.values[r as usize]))
                        .collect();
                    columns.push(Column::Continuous(ContColumn::new(
                        format!("{}.{}", dim.table.name, cc.name),
                        values,
                    )));
                }
            }
        }
    }

    let ncols = columns.len();
    let table = Table::new("imdb_foj", columns).expect("sampled columns aligned");
    let schema = FlatSchema { hub_cols, dim_offsets, bounds, ncols, foj_size: star.foj_size() };
    (table, schema)
}

impl FlatSchema {
    /// Flat column index of dimension `t`'s content column `ci`.
    pub fn dim_col(&self, t: usize, ci: usize) -> usize {
        self.dim_offsets[t] + 1 + ci
    }

    /// Rewrite a join query into a flat-table range query.
    pub fn rewrite(&self, q: &JoinQuery) -> RangeQuery {
        let mut rq = RangeQuery::unconstrained(self.ncols);
        let clamp = |iv: &Interval, flat_col: usize| -> Interval {
            let (lo, hi) = self.bounds[flat_col];
            iv.intersect(&Interval::closed(lo, hi))
        };
        for (ci, iv) in q.hub.iter().enumerate() {
            if let Some(iv) = iv {
                rq.cols[ci] = Some(clamp(iv, ci));
            }
        }
        for (t, &joined) in q.join_dims.iter().enumerate() {
            if joined {
                rq.cols[self.dim_offsets[t]] = Some(Interval::point(1.0));
            }
            for (ci, iv) in q.dims[t].iter().enumerate() {
                if let Some(iv) = iv {
                    let fc = self.dim_col(t, ci);
                    rq.cols[fc] = Some(clamp(iv, fc));
                }
            }
        }
        rq
    }
}

/// Wraps any flat-table estimator into a join-cardinality estimator:
/// `card(q) = sel(rewrite(q)) × |FOJ|`.
pub struct FlatJoinEstimator<E> {
    /// The underlying flat-table estimator.
    pub inner: E,
    /// Flat layout metadata.
    pub schema: FlatSchema,
}

impl<E: SelectivityEstimator> FlatJoinEstimator<E> {
    /// Wrap.
    pub fn new(inner: E, schema: FlatSchema) -> Self {
        FlatJoinEstimator { inner, schema }
    }

    /// Estimated inner-join cardinality of `q`.
    pub fn estimate_card(&mut self, q: &JoinQuery) -> f64 {
        let rq = self.schema.rewrite(q);
        self.inner.estimate(&rq) * self.schema.foj_size
    }

    /// Underlying estimator name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Underlying model size.
    pub fn model_size_bytes(&self) -> usize {
        self.inner.model_size_bytes()
    }
}

/// Convenience: estimate a batch of join queries.
pub fn estimate_cards<E: SelectivityEstimator>(
    est: &mut FlatJoinEstimator<E>,
    queries: &[JoinQuery],
) -> Vec<f64> {
    queries.iter().map(|q| est.estimate_card(q)).collect()
}

/// Build the per-table `LocalRanges` triple used by
/// [`StarSchema::exact_card`] from a join query.
pub fn exact_card(star: &StarSchema, q: &JoinQuery) -> f64 {
    star.exact_card(&q.join_dims, &q.hub, &q.dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{synthetic_imdb, ImdbConfig};
    use crate::workload::JoinWorkloadGenerator;
    use iam_data::estimator::ExactOracle;

    fn setup() -> (StarSchema, Table, FlatSchema) {
        let star = synthetic_imdb(&ImdbConfig { movies: 800, seed: 3 });
        let (flat, schema) = flatten_foj(&star, 20_000, 4);
        (star, flat, schema)
    }

    #[test]
    fn flat_layout_bookkeeping() {
        let (star, flat, schema) = setup();
        assert_eq!(schema.hub_cols, star.hub.ncols());
        assert_eq!(flat.ncols(), schema.ncols);
        // 6 hub + 5 indicators + (3+4+1+1+3) content = 23
        assert_eq!(schema.ncols, 23);
        assert_eq!(flat.nrows(), 20_000);
    }

    #[test]
    fn foj_oracle_estimates_join_cards() {
        // an ExactOracle over the FOJ *sample* approximates true cards via
        // sel × |FOJ| — validating both the sampler and the rewrite
        let (star, flat, schema) = setup();
        let foj = schema.foj_size;
        let mut est = FlatJoinEstimator::new(ExactOracle::new(flat), schema);
        let mut gen = JoinWorkloadGenerator::new(&star, 11);
        let mut ok = 0;
        let queries: Vec<JoinQuery> = (0..30).map(|_| gen.gen_query()).collect();
        for q in &queries {
            let truth = exact_card(&star, q);
            let est_card = est.estimate_card(q);
            // sample-based: require agreement within 3× when truth is
            // non-trivial relative to the sampling resolution
            if truth >= foj / 2000.0 {
                let ratio = (est_card.max(1.0) / truth.max(1.0)).max(truth / est_card.max(1.0));
                if ratio < 3.0 {
                    ok += 1;
                }
            } else {
                ok += 1; // below sampling resolution: skip
            }
        }
        assert!(ok >= 25, "only {ok}/30 within tolerance");
    }

    #[test]
    fn rewrite_requires_indicators() {
        let (star, _, schema) = setup();
        let mut gen = JoinWorkloadGenerator::new(&star, 5);
        let q = gen.gen_query();
        let rq = schema.rewrite(&q);
        for (t, &joined) in q.join_dims.iter().enumerate() {
            let ind = &rq.cols[schema.dim_offsets[t]];
            if joined {
                assert_eq!(*ind, Some(Interval::point(1.0)));
            } else {
                assert!(ind.is_none());
            }
        }
    }
}
