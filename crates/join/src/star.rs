//! Star-join schema: a hub table plus dimension tables keyed by hub row.

use iam_data::{Interval, Table};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One dimension table: content columns plus a foreign key into the hub.
#[derive(Debug, Clone)]
pub struct DimTable {
    /// The content table (does *not* include the key column).
    pub table: Table,
    /// Per-row foreign key: `fk[r]` is the hub row this row belongs to.
    pub fk: Vec<u32>,
    /// Rows grouped by hub row id (`rows_of[m]` lists row ids with fk = m).
    pub rows_of: Vec<Vec<u32>>,
}

impl DimTable {
    /// Build, grouping rows by hub id.
    pub fn new(table: Table, fk: Vec<u32>, hub_rows: usize) -> Self {
        assert_eq!(table.nrows(), fk.len());
        let mut rows_of = vec![Vec::new(); hub_rows];
        for (r, &m) in fk.iter().enumerate() {
            rows_of[m as usize].push(r as u32);
        }
        DimTable { table, fk, rows_of }
    }
}

/// Hub + dimensions, all joined on the hub key.
#[derive(Debug, Clone)]
pub struct StarSchema {
    /// The hub table (e.g. `title`); its implicit key is the row index.
    pub hub: Table,
    /// Dimension tables.
    pub dims: Vec<DimTable>,
}

/// A per-table conjunction of intervals (local predicates), aligned with
/// that table's own column indices.
pub type LocalRanges = Vec<Option<Interval>>;

impl StarSchema {
    /// Number of full-outer-join rows: `Σ_m Π_t max(cnt_t(m), 1)`.
    pub fn foj_size(&self) -> f64 {
        let mut total = 0.0f64;
        for m in 0..self.hub.nrows() {
            let mut w = 1.0f64;
            for d in &self.dims {
                w *= d.rows_of[m].len().max(1) as f64;
            }
            total += w;
        }
        total
    }

    /// Exact inner-join cardinality of a query: `join_tables[t]` marks which
    /// dimension tables participate; `hub_ranges` / `dim_ranges[t]` hold the
    /// per-table local predicates.
    pub fn exact_card(
        &self,
        join_tables: &[bool],
        hub_ranges: &LocalRanges,
        dim_ranges: &[LocalRanges],
    ) -> f64 {
        assert_eq!(join_tables.len(), self.dims.len());
        let nmovies = self.hub.nrows();
        // per-dimension, per-movie matching-row counts (only joined tables)
        let mut counts: Vec<Option<Vec<u32>>> = vec![None; self.dims.len()];
        for (t, dim) in self.dims.iter().enumerate() {
            if !join_tables[t] {
                continue;
            }
            let mut c = vec![0u32; nmovies];
            let ranges = &dim_ranges[t];
            'rows: for r in 0..dim.table.nrows() {
                for (ci, iv) in ranges.iter().enumerate() {
                    if let Some(iv) = iv {
                        if !iv.contains(dim.table.columns[ci].value_as_f64(r)) {
                            continue 'rows;
                        }
                    }
                }
                c[dim.fk[r] as usize] += 1;
            }
            counts[t] = Some(c);
        }
        let mut total = 0.0f64;
        'movies: for m in 0..nmovies {
            for (ci, iv) in hub_ranges.iter().enumerate() {
                if let Some(iv) = iv {
                    if !iv.contains(self.hub.columns[ci].value_as_f64(m)) {
                        continue 'movies;
                    }
                }
            }
            let mut w = 1.0f64;
            for c in counts.iter().flatten() {
                let k = c[m];
                if k == 0 {
                    continue 'movies;
                }
                w *= k as f64;
            }
            total += w;
        }
        total
    }

    /// Exact-Weight sampling of the full outer join: returns, per sample,
    /// the hub row and one optional row id per dimension.
    pub fn sample_foj(&self, n: usize, seed: u64) -> Vec<(u32, Vec<Option<u32>>)> {
        let nmovies = self.hub.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        // movie weights = Π max(cnt, 1)
        let mut cum = Vec::with_capacity(nmovies);
        let mut acc = 0.0f64;
        for m in 0..nmovies {
            let mut w = 1.0f64;
            for d in &self.dims {
                w *= d.rows_of[m].len().max(1) as f64;
            }
            acc += w;
            cum.push(acc);
        }
        (0..n)
            .map(|_| {
                let u = rng.random::<f64>() * acc;
                let m = cum.partition_point(|&c| c < u).min(nmovies - 1);
                let picks = self
                    .dims
                    .iter()
                    .map(|d| {
                        let rows = &d.rows_of[m];
                        if rows.is_empty() {
                            None
                        } else {
                            Some(rows[rng.random_range(0..rows.len())])
                        }
                    })
                    .collect();
                (m as u32, picks)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{CatColumn, Column, ContColumn};
    use iam_data::query::Op;

    /// hub: 3 movies; dim0 has rows for movies 0 (×2) and 1 (×1);
    /// dim1 has rows for movies 1 (×1) and 2 (×3).
    fn tiny() -> StarSchema {
        let hub = Table::new(
            "hub",
            vec![Column::Categorical(CatColumn::from_codes_dense("kind", vec![0, 1, 0], 2))],
        )
        .unwrap();
        let d0 =
            Table::new("d0", vec![Column::Continuous(ContColumn::new("x", vec![1.0, 2.0, 3.0]))])
                .unwrap();
        let d1 = Table::new(
            "d1",
            vec![Column::Continuous(ContColumn::new("y", vec![10.0, 20.0, 30.0, 40.0]))],
        )
        .unwrap();
        StarSchema {
            hub: hub.clone(),
            dims: vec![
                DimTable::new(d0, vec![0, 0, 1], hub.nrows()),
                DimTable::new(d1, vec![1, 2, 2, 2], hub.nrows()),
            ],
        }
    }

    #[test]
    fn foj_size_is_product_of_padded_counts() {
        let s = tiny();
        // movie 0: 2×1, movie 1: 1×1, movie 2: 1×3 → 2 + 1 + 3 = 6
        assert_eq!(s.foj_size(), 6.0);
    }

    #[test]
    fn exact_card_inner_join() {
        let s = tiny();
        // join hub ⋈ d0 ⋈ d1, no predicates: only movie 1 has rows in both
        let card = s.exact_card(&[true, true], &vec![None; 1], &[vec![None; 1], vec![None; 1]]);
        assert_eq!(card, 1.0);
        // hub ⋈ d1 only: movies 1 (1 row) and 2 (3 rows)
        let card = s.exact_card(&[false, true], &vec![None; 1], &[vec![None; 1], vec![None; 1]]);
        assert_eq!(card, 4.0);
    }

    #[test]
    fn exact_card_with_predicates() {
        let s = tiny();
        // hub ⋈ d0 with x ≥ 2: movie 0 has one matching row (x=2), movie 1
        // has one (x=3)
        let mut d0r: LocalRanges = vec![None];
        d0r[0] = Some(Interval::from_op(Op::Ge, 2.0));
        let card = s.exact_card(&[true, false], &vec![None; 1], &[d0r, vec![None; 1]]);
        assert_eq!(card, 2.0);
        // plus hub predicate kind = 1 → only movie 1
        let mut hr: LocalRanges = vec![None];
        hr[0] = Some(Interval::point(1.0));
        let mut d0r: LocalRanges = vec![None];
        d0r[0] = Some(Interval::from_op(Op::Ge, 2.0));
        let card = s.exact_card(&[true, false], &hr, &[d0r, vec![None; 1]]);
        assert_eq!(card, 1.0);
    }

    #[test]
    fn foj_sampling_matches_weights() {
        let s = tiny();
        let samples = s.sample_foj(12_000, 1);
        let mut counts = [0usize; 3];
        for (m, picks) in &samples {
            counts[*m as usize] += 1;
            // NULL exactly when the movie has no rows in that dim
            assert_eq!(picks[0].is_none(), s.dims[0].rows_of[*m as usize].is_empty());
        }
        // weights 2 : 1 : 3
        let f0 = counts[0] as f64 / 12_000.0;
        let f2 = counts[2] as f64 / 12_000.0;
        assert!((f0 - 2.0 / 6.0).abs() < 0.02, "{f0}");
        assert!((f2 - 3.0 / 6.0).abs() < 0.02, "{f2}");
    }
}
