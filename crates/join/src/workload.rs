//! JOB-light-style join workload generation (paper §6.1.3).
//!
//! Each query picks a join graph (the hub plus a non-empty subset of
//! dimension tables), draws a witness tuple from the inner-join result and
//! places predicates on columns of the involved tables: `=` with the
//! witness's value on categorical columns, `≤`/`≥` with a uniform value on
//! continuous columns.

use crate::star::{LocalRanges, StarSchema};
use iam_data::column::Column;
use iam_data::query::{Interval, Op};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A join query over a [`StarSchema`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Which dimension tables participate in the join graph.
    pub join_dims: Vec<bool>,
    /// Local predicates on the hub, one slot per hub column.
    pub hub: LocalRanges,
    /// Local predicates per dimension table.
    pub dims: Vec<LocalRanges>,
}

impl JoinQuery {
    /// Number of predicates across all tables.
    pub fn num_predicates(&self) -> usize {
        self.hub.iter().filter(|p| p.is_some()).count()
            + self.dims.iter().map(|d| d.iter().filter(|p| p.is_some()).count()).sum::<usize>()
    }
}

/// A single-table predicate inside a join query (exported for harnesses
/// that build join queries programmatically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TablePredicate {
    /// Dimension index, or `None` for the hub.
    pub table: Option<usize>,
    /// Column index within that table.
    pub col: usize,
    /// The constraint.
    pub interval: Interval,
}

/// Seeded generator of join queries.
pub struct JoinWorkloadGenerator<'s> {
    star: &'s StarSchema,
    rng: StdRng,
    /// Movies that have at least one row in each dimension (per dim).
    bounds: Vec<Vec<Option<(f64, f64)>>>, // [table][col] continuous bounds
}

impl<'s> JoinWorkloadGenerator<'s> {
    /// Build for a schema.
    pub fn new(star: &'s StarSchema, seed: u64) -> Self {
        let col_bounds = |t: &iam_data::Table| -> Vec<Option<(f64, f64)>> {
            t.columns
                .iter()
                .map(|c| match c {
                    Column::Continuous(cc) => cc.min().zip(cc.max()),
                    Column::Categorical(_) => None,
                })
                .collect()
        };
        let mut bounds = vec![col_bounds(&star.hub)];
        bounds.extend(star.dims.iter().map(|d| col_bounds(&d.table)));
        JoinWorkloadGenerator { star, rng: StdRng::seed_from_u64(seed), bounds }
    }

    /// Generate one query with `min_preds..=max_preds` predicates.
    pub fn gen_query_with(&mut self, min_preds: usize, max_preds: usize) -> JoinQuery {
        let ndims = self.star.dims.len();
        loop {
            // join graph: non-empty subset of dims
            let mut join_dims = vec![false; ndims];
            let count = self.rng.random_range(1..=ndims);
            let mut ids: Vec<usize> = (0..ndims).collect();
            for i in 0..count {
                let j = self.rng.random_range(i..ndims);
                ids.swap(i, j);
            }
            for &d in &ids[..count] {
                join_dims[d] = true;
            }

            // witness movie: has rows in every joined dim
            let Some(movie) = self.pick_witness(&join_dims) else { continue };

            // witness rows per joined dim
            let witness_rows: Vec<Option<u32>> = self
                .star
                .dims
                .iter()
                .enumerate()
                .map(|(t, d)| {
                    if join_dims[t] {
                        let rows = &d.rows_of[movie];
                        Some(rows[self.rng.random_range(0..rows.len())])
                    } else {
                        None
                    }
                })
                .collect();

            // candidate predicate sites: (table option, col)
            let mut sites: Vec<(Option<usize>, usize)> =
                (0..self.star.hub.ncols()).map(|c| (None, c)).collect();
            for (t, &joined) in join_dims.iter().enumerate() {
                if joined {
                    for c in 0..self.star.dims[t].table.ncols() {
                        sites.push((Some(t), c));
                    }
                }
            }
            let k = self.rng.random_range(min_preds.min(sites.len())..=max_preds.min(sites.len()));
            for i in 0..k {
                let j = self.rng.random_range(i..sites.len());
                sites.swap(i, j);
            }

            let mut hub: LocalRanges = vec![None; self.star.hub.ncols()];
            let mut dims: Vec<LocalRanges> =
                self.star.dims.iter().map(|d| vec![None; d.table.ncols()]).collect();
            for &(table, col) in &sites[..k] {
                let iv = self.gen_interval(table, col, movie, &witness_rows);
                match table {
                    None => hub[col] = Some(iv),
                    Some(t) => dims[t][col] = Some(iv),
                }
            }
            return JoinQuery { join_dims, hub, dims };
        }
    }

    /// Generate one query with the paper's 2–6 predicates (scaled-down
    /// version of JOB-light's 5–11 over a smaller schema).
    pub fn gen_query(&mut self) -> JoinQuery {
        self.gen_query_with(2, 6)
    }

    /// Generate a batch.
    pub fn gen_queries(&mut self, n: usize) -> Vec<JoinQuery> {
        (0..n).map(|_| self.gen_query()).collect()
    }

    fn pick_witness(&mut self, join_dims: &[bool]) -> Option<usize> {
        let n = self.star.hub.nrows();
        for _ in 0..64 {
            let m = self.rng.random_range(0..n);
            if join_dims
                .iter()
                .enumerate()
                .all(|(t, &j)| !j || !self.star.dims[t].rows_of[m].is_empty())
            {
                return Some(m);
            }
        }
        None
    }

    fn gen_interval(
        &mut self,
        table: Option<usize>,
        col: usize,
        movie: usize,
        witness_rows: &[Option<u32>],
    ) -> Interval {
        let (tbl, row): (&iam_data::Table, usize) = match table {
            None => (&self.star.hub, movie),
            Some(t) => (
                &self.star.dims[t].table,
                witness_rows[t].expect("joined dim has witness") as usize,
            ),
        };
        let bidx = table.map_or(0, |t| t + 1);
        match &tbl.columns[col] {
            Column::Categorical(_) => {
                // point predicate with the witness's value
                Interval::point(tbl.columns[col].value_as_f64(row))
            }
            Column::Continuous(_) => {
                // JOB-light style: the operator is anchored at the witness's
                // own value, so the witness (hence the query) always matches
                let _ = self.bounds[bidx][col];
                let v = tbl.columns[col].value_as_f64(row);
                if self.rng.random_range(0..2u8) == 0 {
                    Interval::from_op(Op::Le, v)
                } else {
                    Interval::from_op(Op::Ge, v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{synthetic_imdb, ImdbConfig};

    #[test]
    fn generates_valid_queries() {
        let star = synthetic_imdb(&ImdbConfig { movies: 500, seed: 1 });
        let mut gen = JoinWorkloadGenerator::new(&star, 2);
        for q in gen.gen_queries(50) {
            assert!(q.join_dims.iter().any(|&j| j), "at least one joined dim");
            let k = q.num_predicates();
            assert!((2..=6).contains(&k), "{k} predicates");
            // predicates only on joined tables
            for (t, ranges) in q.dims.iter().enumerate() {
                if !q.join_dims[t] {
                    assert!(ranges.iter().all(|r| r.is_none()));
                }
            }
        }
    }

    #[test]
    fn witness_makes_most_queries_nonempty() {
        let star = synthetic_imdb(&ImdbConfig { movies: 500, seed: 3 });
        let mut gen = JoinWorkloadGenerator::new(&star, 4);
        let queries = gen.gen_queries(40);
        let nonempty =
            queries.iter().filter(|q| star.exact_card(&q.join_dims, &q.hub, &q.dims) > 0.0).count();
        assert!(nonempty >= 30, "{nonempty}/40 nonempty");
    }

    #[test]
    fn deterministic_per_seed() {
        let star = synthetic_imdb(&ImdbConfig { movies: 300, seed: 5 });
        let a = JoinWorkloadGenerator::new(&star, 7).gen_queries(10);
        let b = JoinWorkloadGenerator::new(&star, 7).gen_queries(10);
        assert_eq!(a, b);
    }
}
