//! Multi-table substrate: the synthetic IMDB star schema, full-outer-join
//! semantics with Exact-Weight sampling, the JOB-light-style join workload
//! and exact join cardinalities.
//!
//! The paper (following NeuroCard) trains a single AR model on unbiased
//! samples of the *full outer join* of the schema. For a star schema whose
//! joins all share one key (`movie_id`), the full outer join factorises per
//! movie into the cross product of that movie's rows in each table
//! (NULL-padded when a table has none), and the Exact-Weight sampler
//! specialises to: draw a movie proportional to `Π_t max(cnt_t(m), 1)`,
//! then one row (or NULL) uniformly per table. [`star::StarSchema`]
//! implements exactly that, [`flat`] materialises the flat training table
//! with per-table presence indicators, and [`workload`] generates join
//! queries whose ground truth [`star::StarSchema::exact_card`] computes in
//! closed form per movie.

#![deny(missing_docs)]

pub mod flat;
pub mod imdb;
pub mod star;
pub mod workload;

pub use flat::{FlatJoinEstimator, FlatSchema};
pub use imdb::{synthetic_imdb, ImdbConfig};
pub use star::{DimTable, StarSchema};
pub use workload::{JoinQuery, JoinWorkloadGenerator, TablePredicate};
