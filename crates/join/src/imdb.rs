//! The synthetic IMDB dataset (paper §6.1.1).
//!
//! A star schema around `title` with five dimension tables, mimicking the
//! JOB-light slice of IMDB: 13 categorical columns across the schema plus
//! the 5 continuous columns the paper grafts on (`x`,`y`,`z` sensor axes on
//! `movie_info`; `latitude`,`longitude` on `title`). Fanouts are Zipf-like
//! and column values correlate with the movie's `kind_id`/`production_year`
//! so joins carry real signal.

use crate::star::{DimTable, StarSchema};
use iam_data::column::{CatColumn, Column, ContColumn};
use iam_data::synth::{cumsum, normal, sample_cdf, zipf_weights};
use iam_data::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Scale knobs for the generator.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Number of `title` (hub) rows.
    pub movies: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig { movies: 8000, seed: 42 }
    }
}

/// Names of the dimension tables, in schema order.
pub const DIM_NAMES: [&str; 5] =
    ["movie_companies", "movie_info", "movie_info_idx", "movie_keyword", "cast_info"];

/// Generate the star schema.
pub fn synthetic_imdb(cfg: &ImdbConfig) -> StarSchema {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1BDB);
    let n = cfg.movies;

    // --- hub: title(kind_id 7, production_year 140, imdb_index 26,
    //          series_years 50, latitude, longitude) -------------------
    let kind_cdf = cumsum(&zipf_weights(7, 0.8));
    let mut kind = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut index = Vec::with_capacity(n);
    let mut series = Vec::with_capacity(n);
    let mut lat = Vec::with_capacity(n);
    let mut lon = Vec::with_capacity(n);
    // spatial clusters keyed by kind (grafted TWI-style columns)
    let clusters: Vec<(f64, f64, f64)> = (0..7)
        .map(|_| {
            (
                25.0 + 23.0 * rng.random::<f64>(),
                -124.0 + 57.0 * rng.random::<f64>(),
                0.3 + 1.2 * rng.random::<f64>(),
            )
        })
        .collect();
    for _ in 0..n {
        let k = sample_cdf(&mut rng, &kind_cdf);
        kind.push(k as u32);
        // year skews recent, correlated with kind
        let base = 1880.0 + 140.0 * (rng.random::<f64>().powf(0.4));
        let y = (base + k as f64 * 2.0).clamp(1880.0, 2019.0);
        year.push((y - 1880.0) as u32);
        index.push(rng.random_range(0..26u32));
        series.push(((y - 1880.0) as u32 / 3).min(49));
        let (clat, clon, sigma) = clusters[k];
        lat.push((clat + sigma * normal(&mut rng)).clamp(24.0, 49.5));
        lon.push((clon + sigma * 1.4 * normal(&mut rng)).clamp(-125.0, -66.0));
    }
    let hub = Table::new(
        "title",
        vec![
            Column::Categorical(CatColumn::from_codes_dense("kind_id", kind.clone(), 7)),
            Column::Categorical(CatColumn::from_codes_dense("production_year", year.clone(), 140)),
            Column::Categorical(CatColumn::from_codes_dense("imdb_index", index, 26)),
            Column::Categorical(CatColumn::from_codes_dense("series_years", series, 50)),
            Column::Continuous(ContColumn::new("latitude", lat)),
            Column::Continuous(ContColumn::new("longitude", lon)),
        ],
    )
    .expect("hub columns aligned");

    // helper: draw a fanout with P(0) and a geometric-ish tail
    let fanout = |rng: &mut StdRng, p0: f64, mean: f64| -> usize {
        if rng.random::<f64>() < p0 {
            0
        } else {
            let mut k = 1usize;
            while k < 12 && rng.random::<f64>() < 1.0 - 1.0 / mean {
                k += 1;
            }
            k
        }
    };

    // --- movie_companies(company_id 500, company_type_id 4, note_type 10)
    let company_cdf = cumsum(&zipf_weights(500, 1.1));
    let mut mc_fk = Vec::new();
    let (mut mc_cid, mut mc_ct, mut mc_note) = (Vec::new(), Vec::new(), Vec::new());
    for m in 0..n {
        for _ in 0..fanout(&mut rng, 0.15, 2.2) {
            mc_fk.push(m as u32);
            // company pool shifts with production year
            let shift = (year[m] / 20) as usize * 37;
            let cid = (sample_cdf(&mut rng, &company_cdf) + shift) % 500;
            mc_cid.push(cid as u32);
            mc_ct.push(rng.random_range(0..4u32));
            mc_note.push((kind[m] + rng.random_range(0..4u32)) % 10);
        }
    }
    let movie_companies = Table::new(
        "movie_companies",
        vec![
            Column::Categorical(CatColumn::from_codes_dense("company_id", mc_cid, 500)),
            Column::Categorical(CatColumn::from_codes_dense("company_type_id", mc_ct, 4)),
            Column::Categorical(CatColumn::from_codes_dense("note_type", mc_note, 10)),
        ],
    )
    .expect("aligned");

    // --- movie_info(info_type_id 71, x, y, z) — grafted WISDM-style axes
    let sigs: Vec<([f64; 3], f64)> = (0..71)
        .map(|_| {
            (
                [
                    -10.0 + 20.0 * rng.random::<f64>(),
                    -10.0 + 20.0 * rng.random::<f64>(),
                    -10.0 + 20.0 * rng.random::<f64>(),
                ],
                0.4 + 2.0 * rng.random::<f64>(),
            )
        })
        .collect();
    let mut mi_fk = Vec::new();
    let (mut mi_it, mut mi_x, mut mi_y, mut mi_z) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (m, &k) in kind.iter().enumerate().take(n) {
        for _ in 0..fanout(&mut rng, 0.1, 3.0) {
            mi_fk.push(m as u32);
            let it = ((k as usize * 11) + rng.random_range(0..30usize)) % 71;
            mi_it.push(it as u32);
            let (mean, s) = &sigs[it];
            let shared = normal(&mut rng);
            mi_x.push(mean[0] + s * (0.7 * shared + 0.7 * normal(&mut rng)));
            mi_y.push(mean[1] + s * (0.7 * shared + 0.7 * normal(&mut rng)));
            mi_z.push(mean[2] + s * (0.7 * shared + 0.7 * normal(&mut rng)));
        }
    }
    let movie_info = Table::new(
        "movie_info",
        vec![
            Column::Categorical(CatColumn::from_codes_dense("info_type_id", mi_it, 71)),
            Column::Continuous(ContColumn::new("x", mi_x)),
            Column::Continuous(ContColumn::new("y", mi_y)),
            Column::Continuous(ContColumn::new("z", mi_z)),
        ],
    )
    .expect("aligned");

    // --- movie_info_idx(info_type_id 5)
    let mut mii_fk = Vec::new();
    let mut mii_it = Vec::new();
    for (m, &k) in kind.iter().enumerate().take(n) {
        for _ in 0..fanout(&mut rng, 0.3, 1.5) {
            mii_fk.push(m as u32);
            mii_it.push((k + rng.random_range(0..2u32)) % 5);
        }
    }
    let movie_info_idx = Table::new(
        "movie_info_idx",
        vec![Column::Categorical(CatColumn::from_codes_dense("info_type_id", mii_it, 5))],
    )
    .expect("aligned");

    // --- movie_keyword(keyword_id 1000)
    let keyword_cdf = cumsum(&zipf_weights(1000, 1.0));
    let mut mk_fk = Vec::new();
    let mut mk_kid = Vec::new();
    for (m, &k) in kind.iter().enumerate().take(n) {
        for _ in 0..fanout(&mut rng, 0.25, 2.5) {
            mk_fk.push(m as u32);
            let kid = (sample_cdf(&mut rng, &keyword_cdf) + k as usize * 101) % 1000;
            mk_kid.push(kid as u32);
        }
    }
    let movie_keyword = Table::new(
        "movie_keyword",
        vec![Column::Categorical(CatColumn::from_codes_dense("keyword_id", mk_kid, 1000))],
    )
    .expect("aligned");

    // --- cast_info(role_id 11, person_role 2000, nr_order 100)
    let person_cdf = cumsum(&zipf_weights(2000, 0.9));
    let mut ci_fk = Vec::new();
    let (mut ci_role, mut ci_person, mut ci_order) = (Vec::new(), Vec::new(), Vec::new());
    for m in 0..n {
        let cast = fanout(&mut rng, 0.05, 4.0);
        for ord in 0..cast {
            ci_fk.push(m as u32);
            ci_role.push(rng.random_range(0..11u32));
            ci_person.push(sample_cdf(&mut rng, &person_cdf) as u32);
            ci_order.push((ord as u32).min(99));
        }
    }
    let cast_info = Table::new(
        "cast_info",
        vec![
            Column::Categorical(CatColumn::from_codes_dense("role_id", ci_role, 11)),
            Column::Categorical(CatColumn::from_codes_dense("person_role_id", ci_person, 2000)),
            Column::Categorical(CatColumn::from_codes_dense("nr_order", ci_order, 100)),
        ],
    )
    .expect("aligned");

    let hub_rows = hub.nrows();
    StarSchema {
        hub,
        dims: vec![
            DimTable::new(movie_companies, mc_fk, hub_rows),
            DimTable::new(movie_info, mi_fk, hub_rows),
            DimTable::new(movie_info_idx, mii_fk, hub_rows),
            DimTable::new(movie_keyword, mk_fk, hub_rows),
            DimTable::new(cast_info, ci_fk, hub_rows),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_matches_paper_profile() {
        let s = synthetic_imdb(&ImdbConfig { movies: 1000, seed: 1 });
        assert_eq!(s.dims.len(), 5);
        // 13 categorical + 5 continuous across the schema
        let mut cats = 0;
        let mut conts = 0;
        for c in s.hub.columns.iter().chain(s.dims.iter().flat_map(|d| d.table.columns.iter())) {
            if c.is_continuous() {
                conts += 1;
            } else {
                cats += 1;
            }
        }
        assert_eq!(cats, 13, "categorical column count");
        assert_eq!(conts, 5, "continuous column count");
    }

    #[test]
    fn deterministic() {
        let a = synthetic_imdb(&ImdbConfig { movies: 300, seed: 9 });
        let b = synthetic_imdb(&ImdbConfig { movies: 300, seed: 9 });
        assert_eq!(a.hub.columns, b.hub.columns);
        assert_eq!(a.dims[1].fk, b.dims[1].fk);
    }

    #[test]
    fn fanouts_are_plausible() {
        let s = synthetic_imdb(&ImdbConfig { movies: 2000, seed: 2 });
        for (d, name) in s.dims.iter().zip(super::DIM_NAMES) {
            let avg = d.table.nrows() as f64 / 2000.0;
            assert!((0.3..8.0).contains(&avg), "{name} fanout {avg}");
        }
        // FOJ is much larger than any single table
        assert!(s.foj_size() > s.dims[1].table.nrows() as f64);
    }
}
