//! Uniform-sample estimator.
//!
//! The paper sizes the sample so its space consumption matches IAM's model
//! (0.02 %–0.63 % of the table); [`SamplingEstimator::with_budget`] does the
//! same given a byte budget.

use iam_data::{RangeQuery, SelectivityEstimator, Table};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Keeps a uniform row sample (projected to `f64`) and scans it per query.
pub struct SamplingEstimator {
    /// Row-major `nsamples × ncols` sample matrix.
    sample: Vec<f64>,
    ncols: usize,
    nsamples: usize,
}

impl SamplingEstimator {
    /// Sample a fixed `fraction` of rows (without replacement).
    pub fn new(table: &Table, fraction: f64, seed: u64) -> Self {
        let n = table.nrows();
        let target = ((n as f64 * fraction).round() as usize).clamp(1, n);
        Self::with_rows(table, target, seed)
    }

    /// Size the sample to a byte budget (8 bytes per cell), as the paper
    /// does to match IAM's footprint.
    pub fn with_budget(table: &Table, budget_bytes: usize, seed: u64) -> Self {
        let row_bytes = table.ncols() * std::mem::size_of::<f64>();
        let rows = (budget_bytes / row_bytes.max(1)).max(1);
        Self::with_rows(table, rows.min(table.nrows()), seed)
    }

    fn with_rows(table: &Table, target: usize, seed: u64) -> Self {
        let n = table.nrows();
        assert!(n > 0, "cannot sample an empty table");
        let mut rng = StdRng::seed_from_u64(seed);
        // partial Fisher-Yates over row ids
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..target.min(n) {
            let j = rng.random_range(i..n);
            ids.swap(i, j);
        }
        let ncols = table.ncols();
        let mut sample = Vec::with_capacity(target * ncols);
        let mut row = Vec::new();
        for &r in &ids[..target] {
            table.row_as_f64(r, &mut row);
            sample.extend_from_slice(&row);
        }
        SamplingEstimator { sample, ncols, nsamples: target }
    }

    /// Number of sampled rows.
    pub fn nsamples(&self) -> usize {
        self.nsamples
    }
}

impl SelectivityEstimator for SamplingEstimator {
    fn name(&self) -> &str {
        "Sampling"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        assert_eq!(q.cols.len(), self.ncols);
        let mut hits = 0usize;
        for row in self.sample.chunks_exact(self.ncols) {
            if q.matches_row(row) {
                hits += 1;
            }
        }
        hits as f64 / self.nsamples as f64
    }

    fn model_size_bytes(&self) -> usize {
        self.sample.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{Column, ContColumn};
    use iam_data::query::{Interval, Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table};

    fn table(n: usize) -> Table {
        Table::new(
            "t",
            vec![
                Column::Continuous(ContColumn::new("a", (0..n).map(|i| i as f64).collect())),
                Column::Continuous(ContColumn::new("b", (0..n).map(|i| (i % 97) as f64).collect())),
            ],
        )
        .unwrap()
    }

    #[test]
    fn full_sample_is_exact() {
        let t = table(500);
        let mut s = SamplingEstimator::new(&t, 1.0, 1);
        let q = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 99.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        assert!((s.estimate(&rq) - exact_selectivity(&t, &q)).abs() < 1e-12);
    }

    #[test]
    fn partial_sample_approximates() {
        let t = table(20_000);
        let mut s = SamplingEstimator::new(&t, 0.05, 2);
        assert_eq!(s.nsamples(), 1000);
        let q = Query::new(vec![Predicate { col: 1, op: Op::Le, value: 48.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        let truth = exact_selectivity(&t, &q);
        assert!((s.estimate(&rq) - truth).abs() < 0.05);
    }

    #[test]
    fn budget_sizing() {
        let t = table(10_000);
        let s = SamplingEstimator::with_budget(&t, 1600, 3);
        // 16 bytes per row → 100 rows
        assert_eq!(s.nsamples(), 100);
        assert_eq!(s.model_size_bytes(), 1600);
    }

    #[test]
    fn misses_rare_values_in_small_sample() {
        // the paper's observed failure mode: low-selectivity queries
        let t = table(10_000);
        let mut s = SamplingEstimator::new(&t, 0.001, 4);
        let mut rq = RangeQuery::unconstrained(2);
        rq.cols[0] = Some(Interval::point(7777.0));
        // with 10 samples the point query is almost surely estimated 0
        assert_eq!(s.estimate(&rq), 0.0);
    }
}
