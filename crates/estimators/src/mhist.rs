//! MHIST — multidimensional histogram with MaxDiff-style greedy splits
//! (Poosala et al.), the paper's multi-dim histogram baseline.
//!
//! The space is partitioned into axis-aligned buckets by repeatedly taking
//! the bucket holding the most rows and splitting it along the dimension
//! with the largest *area difference* (frequency gap between adjacent
//! distinct values, the MaxDiff criterion). Buckets store their bounding
//! box and row count; queries assume uniform spread inside a bucket — the
//! assumption behind MHIST's maximum-error blowups (§6.2).

use iam_data::{RangeQuery, SelectivityEstimator, Table};

struct Bucket {
    /// Row indices (only kept during construction).
    rows: Vec<usize>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// A finished bucket: bounding box + count.
struct Leaf {
    lo: Vec<f64>,
    hi: Vec<f64>,
    count: usize,
}

/// The MaxDiff multidimensional histogram.
pub struct Mhist {
    leaves: Vec<Leaf>,
    nrows: usize,
    ncols: usize,
}

impl Mhist {
    /// Build with (at most) `buckets` buckets.
    pub fn new(table: &Table, buckets: usize) -> Self {
        let n = table.nrows();
        let ncols = table.ncols();
        assert!(n > 0 && buckets >= 1);
        // column-major value cache
        let data: Vec<Vec<f64>> =
            table.columns.iter().map(|c| (0..n).map(|r| c.value_as_f64(r)).collect()).collect();

        let bbox = |rows: &[usize]| -> (Vec<f64>, Vec<f64>) {
            let mut lo = vec![f64::INFINITY; ncols];
            let mut hi = vec![f64::NEG_INFINITY; ncols];
            for &r in rows {
                for d in 0..ncols {
                    lo[d] = lo[d].min(data[d][r]);
                    hi[d] = hi[d].max(data[d][r]);
                }
            }
            (lo, hi)
        };

        let all: Vec<usize> = (0..n).collect();
        let (lo, hi) = bbox(&all);
        let mut work = vec![Bucket { rows: all, lo, hi }];
        let mut done: Vec<Bucket> = Vec::new(); // unsplittable (single point)

        while !work.is_empty() && work.len() + done.len() < buckets {
            // split the most populated bucket still in play
            let idx = work
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.rows.len())
                .map(|(i, _)| i)
                .expect("work nonempty");
            if work[idx].rows.len() <= 1 {
                break; // nothing left worth splitting
            }
            let bucket = work.swap_remove(idx);
            match Self::split_maxdiff(&bucket, &data, ncols) {
                Some((a, b)) => {
                    let (alo, ahi) = bbox(&a);
                    let (blo, bhi) = bbox(&b);
                    work.push(Bucket { rows: a, lo: alo, hi: ahi });
                    work.push(Bucket { rows: b, lo: blo, hi: bhi });
                }
                None => done.push(bucket), // identical values in every dim
            }
        }
        work.append(&mut done);

        let leaves =
            work.into_iter().map(|b| Leaf { count: b.rows.len(), lo: b.lo, hi: b.hi }).collect();
        Mhist { leaves, nrows: n, ncols }
    }

    /// Find the (dimension, threshold) with the maximum frequency-weighted
    /// gap between adjacent distinct values; split rows at it.
    fn split_maxdiff(
        bucket: &Bucket,
        data: &[Vec<f64>],
        ncols: usize,
    ) -> Option<(Vec<usize>, Vec<usize>)> {
        let mut best: Option<(f64, usize, f64)> = None; // (score, dim, threshold)
        let mut vals: Vec<f64> = Vec::with_capacity(bucket.rows.len());
        for (d, col) in data.iter().enumerate().take(ncols) {
            vals.clear();
            vals.extend(bucket.rows.iter().map(|&r| col[r]));
            vals.sort_unstable_by(f64::total_cmp);
            // area difference between adjacent distinct values: gap width ×
            // run frequency (cap scan cost on long buckets)
            let mut i = 0;
            while i < vals.len() {
                let v = vals[i];
                let mut j = i + 1;
                while j < vals.len() && vals[j] == v {
                    j += 1;
                }
                if j < vals.len() {
                    let gap = vals[j] - v;
                    let score = gap * (j - i) as f64;
                    if best.is_none_or(|(s, _, _)| score > s) {
                        best = Some((score, d, (v + vals[j]) / 2.0));
                    }
                }
                i = j;
            }
        }
        let (_, dim, threshold) = best?;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for &r in &bucket.rows {
            if data[dim][r] <= threshold {
                a.push(r);
            } else {
                b.push(r);
            }
        }
        if a.is_empty() || b.is_empty() {
            None
        } else {
            Some((a, b))
        }
    }
}

impl SelectivityEstimator for Mhist {
    fn name(&self) -> &str {
        "MHIST"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        assert_eq!(q.cols.len(), self.ncols);
        let mut total = 0.0f64;
        for leaf in &self.leaves {
            let mut frac = 1.0f64;
            for d in 0..self.ncols {
                let Some(iv) = &q.cols[d] else { continue };
                let (blo, bhi) = (leaf.lo[d], leaf.hi[d]);
                let lo = iv.lo.max(blo);
                let hi = iv.hi.min(bhi);
                if hi < lo {
                    frac = 0.0;
                    break;
                }
                let width = bhi - blo;
                // uniform-spread assumption inside the bucket
                frac *= if width > 0.0 { ((hi - lo) / width).clamp(0.0, 1.0) } else { 1.0 };
            }
            total += frac * leaf.count as f64;
        }
        (total / self.nrows as f64).clamp(0.0, 1.0)
    }

    fn model_size_bytes(&self) -> usize {
        // per leaf: 2 × ncols bounds + count
        self.leaves.len() * (2 * self.ncols + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{Column, ContColumn};
    use iam_data::query::{Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn clustered_table(n: usize, seed: u64) -> Table {
        // two distant clusters: MaxDiff should cut between them
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..n {
            if rng.random_range(0..2u8) == 0 {
                a.push(rng.random::<f64>());
                b.push(rng.random::<f64>());
            } else {
                a.push(100.0 + rng.random::<f64>());
                b.push(100.0 + rng.random::<f64>());
            }
        }
        Table::new(
            "cl",
            vec![
                Column::Continuous(ContColumn::new("a", a)),
                Column::Continuous(ContColumn::new("b", b)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn respects_bucket_budget() {
        let t = clustered_table(2000, 1);
        let m = Mhist::new(&t, 64);
        assert!(m.leaves.len() <= 64);
        assert!(m.leaves.len() > 32);
        assert_eq!(m.leaves.iter().map(|l| l.count).sum::<usize>(), 2000);
    }

    #[test]
    fn accurate_on_cluster_queries() {
        let t = clustered_table(5000, 2);
        let mut m = Mhist::new(&t, 128);
        // the whole low cluster
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Le, value: 50.0 },
            Predicate { col: 1, op: Op::Le, value: 50.0 },
        ]);
        let (rq, _) = q.normalize(2).unwrap();
        let truth = exact_selectivity(&t, &q);
        assert!((m.estimate(&rq) - truth).abs() < 0.02);
    }

    #[test]
    fn beats_independence_on_correlation() {
        // the low cluster on col a has ONLY low values on col b; a cross
        // query (low a, high b) selects nothing — MHIST should see that
        let t = clustered_table(5000, 3);
        let mut m = Mhist::new(&t, 128);
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Le, value: 50.0 },
            Predicate { col: 1, op: Op::Ge, value: 50.0 },
        ]);
        let (rq, _) = q.normalize(2).unwrap();
        assert!(m.estimate(&rq) < 0.01);
    }

    #[test]
    fn unconstrained_is_one() {
        let t = clustered_table(500, 4);
        let mut m = Mhist::new(&t, 16);
        assert!((m.estimate(&RangeQuery::unconstrained(2)) - 1.0).abs() < 1e-9);
    }
}
