//! Chow-Liu tree Bayesian network (the paper's BayesNet baseline).
//!
//! Columns are discretised (identity bins for small categorical domains,
//! equi-depth bins otherwise — the "discretisation information loss" the
//! paper cites), pairwise mutual information is measured on the bins, and a
//! maximum-spanning tree (Prim) defines the dependency structure. CPTs are
//! Laplace-smoothed counts. Range queries are answered exactly over the
//! discretised model by bottom-up message passing with per-bin fractional
//! coverage weights.

use iam_data::{Column, Interval, RangeQuery, SelectivityEstimator, Table};

/// Per-column discretisation.
enum Bins {
    /// One bin per categorical code.
    Identity {
        /// Domain size.
        domain: usize,
    },
    /// Equi-depth bins over a continuous (or large) domain.
    EquiDepth {
        /// `nb + 1` edges.
        edges: Vec<f64>,
    },
}

impl Bins {
    fn nbins(&self) -> usize {
        match self {
            Bins::Identity { domain } => *domain,
            Bins::EquiDepth { edges } => edges.len() - 1,
        }
    }

    fn bin_of(&self, v: f64) -> usize {
        match self {
            Bins::Identity { domain } => (v as usize).min(domain - 1),
            Bins::EquiDepth { edges } => {
                let nb = edges.len() - 1;
                edges[1..nb].partition_point(|&e| e <= v).min(nb - 1)
            }
        }
    }

    /// Fractional coverage of each bin by `iv` (uniform-within-bin).
    fn coverage(&self, iv: &Interval, out: &mut Vec<f64>) {
        out.clear();
        match self {
            Bins::Identity { domain } => {
                for code in 0..*domain {
                    out.push(f64::from(u8::from(iv.contains(code as f64))));
                }
            }
            Bins::EquiDepth { edges } => {
                let nb = edges.len() - 1;
                let lo = if iv.lo == f64::NEG_INFINITY { edges[0] } else { iv.lo };
                let hi = if iv.hi == f64::INFINITY { edges[nb] } else { iv.hi };
                for j in 0..nb {
                    let (blo, bhi) = (edges[j], edges[j + 1]);
                    let width = bhi - blo;
                    let overlap = (hi.min(bhi) - lo.max(blo)).max(0.0);
                    out.push(if width > 0.0 {
                        (overlap / width).min(1.0)
                    } else {
                        f64::from(u8::from(lo <= blo && blo <= hi))
                    });
                }
            }
        }
    }
}

/// The Chow-Liu estimator.
pub struct ChowLiuNet {
    bins: Vec<Bins>,
    /// `parent[c]` is `None` for the root.
    parent: Vec<Option<usize>>,
    /// Children lists (derived from `parent`).
    children: Vec<Vec<usize>>,
    /// Root marginal and per-edge CPTs. `cpt[c][p_bin * nb_c + c_bin]` =
    /// `P(c_bin | p_bin)`; for the root, `cpt[root][b]` = `P(b)`.
    cpt: Vec<Vec<f64>>,
    root: usize,
}

/// Maximum bins per column.
const MAX_BINS: usize = 64;

impl ChowLiuNet {
    /// Learn structure and CPTs from `table`.
    pub fn new(table: &Table) -> Self {
        let n = table.nrows();
        let d = table.ncols();
        assert!(n > 0 && d >= 1);

        let bins: Vec<Bins> = table
            .columns
            .iter()
            .map(|c| match c {
                Column::Categorical(cc) if cc.domain_size() <= MAX_BINS => {
                    Bins::Identity { domain: cc.domain_size().max(1) }
                }
                _ => {
                    let mut vals: Vec<f64> = (0..n).map(|r| c.value_as_f64(r)).collect();
                    vals.sort_unstable_by(f64::total_cmp);
                    let nb = MAX_BINS.min(n);
                    let mut edges = Vec::with_capacity(nb + 1);
                    for k in 0..=nb {
                        edges.push(vals[(k * (n - 1)) / nb]);
                    }
                    Bins::EquiDepth { edges }
                }
            })
            .collect();

        // binned data, column-major
        let binned: Vec<Vec<usize>> = (0..d)
            .map(|c| {
                let col = &table.columns[c];
                (0..n).map(|r| bins[c].bin_of(col.value_as_f64(r))).collect()
            })
            .collect();

        // pairwise mutual information
        let mi = |a: usize, b: usize| -> f64 {
            let (na, nb) = (bins[a].nbins(), bins[b].nbins());
            let mut joint = vec![0u32; na * nb];
            let mut ma = vec![0u32; na];
            let mut mb = vec![0u32; nb];
            for (&x, &y) in binned[a].iter().zip(&binned[b]).take(n) {
                joint[x * nb + y] += 1;
                ma[x] += 1;
                mb[y] += 1;
            }
            let nf = n as f64;
            let mut total = 0.0;
            for x in 0..na {
                for y in 0..nb {
                    let c = joint[x * nb + y];
                    if c == 0 {
                        continue;
                    }
                    let pxy = c as f64 / nf;
                    total += pxy * (pxy / (ma[x] as f64 / nf * mb[y] as f64 / nf)).ln();
                }
            }
            total
        };

        // Prim's maximum spanning tree over MI
        let root = 0usize;
        let mut in_tree = vec![false; d];
        let mut best_gain = vec![f64::NEG_INFINITY; d];
        let mut best_link = vec![0usize; d];
        let mut parent: Vec<Option<usize>> = vec![None; d];
        in_tree[root] = true;
        for c in 1..d {
            best_gain[c] = mi(root, c);
            best_link[c] = root;
        }
        for _ in 1..d {
            let Some(next) = (0..d)
                .filter(|&c| !in_tree[c])
                .max_by(|&a, &b| best_gain[a].total_cmp(&best_gain[b]))
            else {
                break;
            };
            in_tree[next] = true;
            parent[next] = Some(best_link[next]);
            for c in 0..d {
                if !in_tree[c] {
                    let g = mi(next, c);
                    if g > best_gain[c] {
                        best_gain[c] = g;
                        best_link[c] = next;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); d];
        for (c, p) in parent.iter().enumerate() {
            if let Some(p) = *p {
                children[p].push(c);
            }
        }

        // CPTs with Laplace smoothing
        let mut cpt = Vec::with_capacity(d);
        for c in 0..d {
            let nc = bins[c].nbins();
            match parent[c] {
                None => {
                    let mut counts = vec![1.0f64; nc]; // +1 smoothing
                    for r in 0..n {
                        counts[binned[c][r]] += 1.0;
                    }
                    let total: f64 = counts.iter().sum();
                    cpt.push(counts.into_iter().map(|x| x / total).collect());
                }
                Some(p) => {
                    let np = bins[p].nbins();
                    let mut counts = vec![1.0f64; np * nc];
                    for r in 0..n {
                        counts[binned[p][r] * nc + binned[c][r]] += 1.0;
                    }
                    for pb in 0..np {
                        let row = &mut counts[pb * nc..(pb + 1) * nc];
                        let total: f64 = row.iter().sum();
                        for x in row {
                            *x /= total;
                        }
                    }
                    cpt.push(counts);
                }
            }
        }

        ChowLiuNet { bins, parent, children, cpt, root }
    }

    /// Message from node `c` to its parent: for each parent bin, the
    /// probability that `c`'s subtree satisfies the query.
    fn message(&self, c: usize, coverage: &[Vec<f64>]) -> Vec<f64> {
        let nc = self.bins[c].nbins();
        // own factor per bin × product of child messages per bin
        let mut own: Vec<f64> = coverage[c].clone();
        for &child in &self.children[c] {
            let m = self.message(child, coverage);
            for (o, mi) in own.iter_mut().zip(&m) {
                *o *= mi;
            }
        }
        match self.parent[c] {
            None => own, // root: caller combines with the marginal
            Some(p) => {
                let np = self.bins[p].nbins();
                let table = &self.cpt[c];
                let mut msg = vec![0.0f64; np];
                for (pb, slot) in msg.iter_mut().enumerate() {
                    let row = &table[pb * nc..(pb + 1) * nc];
                    *slot = row.iter().zip(&own).map(|(&p, &o)| p * o).sum();
                }
                msg
            }
        }
    }
}

impl SelectivityEstimator for ChowLiuNet {
    fn name(&self) -> &str {
        "BayesNet"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        let d = self.bins.len();
        assert_eq!(q.cols.len(), d);
        let coverage: Vec<Vec<f64>> = (0..d)
            .map(|c| {
                let mut w = Vec::new();
                match &q.cols[c] {
                    None => w.extend(std::iter::repeat_n(1.0, self.bins[c].nbins())),
                    Some(iv) => self.bins[c].coverage(iv, &mut w),
                }
                w
            })
            .collect();
        let root_factor = self.message(self.root, &coverage);
        let marginal = &self.cpt[self.root];
        let sel: f64 = marginal.iter().zip(&root_factor).map(|(&p, &f)| p * f).sum();
        sel.clamp(0.0, 1.0)
    }

    fn model_size_bytes(&self) -> usize {
        let cpts: usize = self.cpt.iter().map(|t| t.len() * 8).sum();
        let edges: usize = self
            .bins
            .iter()
            .map(|b| match b {
                Bins::Identity { .. } => 8,
                Bins::EquiDepth { edges } => edges.len() * 8,
            })
            .sum();
        cpts + edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{CatColumn, ContColumn};
    use iam_data::query::{Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Chain-correlated data: a → b → c.
    fn chain_table(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for _ in 0..n {
            let x = rng.random_range(0..8u32);
            let y = if rng.random::<f64>() < 0.85 { x } else { rng.random_range(0..8) };
            let z = (y as f64) * 10.0 + rng.random::<f64>();
            a.push(x);
            b.push(y);
            c.push(z);
        }
        Table::new(
            "chain",
            vec![
                Column::Categorical(CatColumn::from_codes_dense("a", a, 8)),
                Column::Categorical(CatColumn::from_codes_dense("b", b, 8)),
                Column::Continuous(ContColumn::new("c", c)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn tree_edges_follow_dependencies() {
        let t = chain_table(6000, 1);
        let net = ChowLiuNet::new(&t);
        // every non-root node has exactly one parent; the tree is connected
        assert_eq!(net.parent.iter().filter(|p| p.is_none()).count(), 1);
        // b should attach to a (or vice versa through the chain)
        assert!(net.parent[1] == Some(0) || net.parent[0] == Some(1) || net.parent[1] == Some(2));
    }

    #[test]
    fn captures_pairwise_correlation() {
        let t = chain_table(8000, 2);
        let mut net = ChowLiuNet::new(&t);
        // a=3 AND b=3 is far more likely than independence suggests
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 3.0 },
            Predicate { col: 1, op: Op::Eq, value: 3.0 },
        ]);
        let (rq, _) = q.normalize(3).unwrap();
        let truth = exact_selectivity(&t, &q);
        let est = net.estimate(&rq);
        assert!(
            (est - truth).abs() < 0.02,
            "est {est} truth {truth} (independence would give ~{})",
            (1.0 / 8.0) * (0.85 + 0.15 / 8.0) / 8.0
        );
    }

    #[test]
    fn range_on_continuous_child() {
        let t = chain_table(8000, 3);
        let mut net = ChowLiuNet::new(&t);
        let q = Query::new(vec![
            Predicate { col: 1, op: Op::Eq, value: 5.0 },
            Predicate { col: 2, op: Op::Ge, value: 50.0 },
            Predicate { col: 2, op: Op::Le, value: 51.0 },
        ]);
        let (rq, _) = q.normalize(3).unwrap();
        let truth = exact_selectivity(&t, &q);
        let est = net.estimate(&rq);
        assert!((est - truth).abs() < 0.05, "est {est} truth {truth}");
    }

    #[test]
    fn unconstrained_is_one() {
        let t = chain_table(1000, 4);
        let mut net = ChowLiuNet::new(&t);
        assert!((net.estimate(&RangeQuery::unconstrained(3)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn single_column_table() {
        let t = Table::new(
            "one",
            vec![Column::Continuous(ContColumn::new("x", (0..1000).map(|i| i as f64).collect()))],
        )
        .unwrap();
        let mut net = ChowLiuNet::new(&t);
        let q = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 249.0 }]);
        let (rq, _) = q.normalize(1).unwrap();
        assert!((net.estimate(&rq) - 0.25).abs() < 0.03);
    }
}
