//! MSCN-lite: query-driven neural estimator.
//!
//! Queries are featurised as per-column predicate encodings
//! `(constrained?, lo_norm, hi_norm)` plus the hit-fraction of a
//! materialised row sample (the "bitmap" signal of the original MSCN,
//! summarised); an MLP regresses the normalised log-selectivity. Trained on
//! a workload of `(query, true selectivity)` pairs — which is why accuracy
//! collapses in the tail, where training queries rarely land (§6.2).

use iam_data::{RangeQuery, SelectivityEstimator, Table};
use iam_nn::{Adam, AdamConfig, Mlp, MlpConfig, Parameters};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`MscnLite`].
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Materialised sample rows for the bitmap feature (paper: 1 K).
    pub sample_rows: usize,
    /// Hidden widths (paper: two layers of 256).
    pub hidden: Vec<usize>,
    /// Training epochs over the workload.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        MscnConfig { sample_rows: 1000, hidden: vec![256, 256], epochs: 60, lr: 1e-3, seed: 42 }
    }
}

/// The MSCN-lite estimator.
pub struct MscnLite {
    mlp: Mlp,
    /// Row-major materialised sample.
    sample: Vec<f64>,
    nsample: usize,
    ncols: usize,
    /// Per-column (min, max) for feature normalisation.
    bounds: Vec<(f64, f64)>,
    /// `ln(1/|T|)` — the log-selectivity floor used for target scaling.
    log_floor: f64,
}

impl MscnLite {
    /// Train on a `(query, true-selectivity)` workload.
    pub fn fit(table: &Table, training: &[(RangeQuery, f64)], cfg: MscnConfig) -> Self {
        let ncols = table.ncols();
        let n = table.nrows().max(2);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // per-column bounds
        let bounds: Vec<(f64, f64)> = table
            .columns
            .iter()
            .map(|c| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for r in 0..c.len() {
                    let v = c.value_as_f64(r);
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                (lo, hi.max(lo + 1e-12))
            })
            .collect();

        // materialised sample
        let m = cfg.sample_rows.min(table.nrows()).max(1);
        let mut ids: Vec<usize> = (0..table.nrows()).collect();
        for i in 0..m {
            let j = rng.random_range(i..table.nrows());
            ids.swap(i, j);
        }
        let mut sample = Vec::with_capacity(m * ncols);
        let mut row = Vec::new();
        for &r in &ids[..m] {
            table.row_as_f64(r, &mut row);
            sample.extend_from_slice(&row);
        }

        let log_floor = (1.0 / n as f64).ln();
        let mut est = MscnLite {
            mlp: Mlp::new(&MlpConfig {
                in_dim: 3 * ncols + 1,
                hidden: cfg.hidden.clone(),
                seed: cfg.seed,
            }),
            sample,
            nsample: m,
            ncols,
            bounds,
            log_floor,
        };

        // training matrix
        let mut xs = Vec::with_capacity(training.len() * (3 * ncols + 1));
        let mut ys = Vec::with_capacity(training.len());
        let mut feat = Vec::new();
        for (q, sel) in training {
            est.featurize(q, &mut feat);
            xs.extend_from_slice(&feat);
            ys.push(est.target_of(*sel));
        }
        let mut opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
        let bs = 128.min(training.len().max(1));
        let fw = 3 * ncols + 1;
        for _ in 0..cfg.epochs {
            for (bx, by) in xs.chunks(bs * fw).zip(ys.chunks(bs)) {
                est.mlp.train_batch(bx, by, by.len());
                opt.step(&mut est.mlp);
            }
        }
        est
    }

    fn target_of(&self, sel: f64) -> f32 {
        // map log-selectivity to [0, 1]: 0 ↔ floor (1/|T|), 1 ↔ sel = 1
        let ls = sel.max(self.log_floor.exp()).ln();
        (1.0 - ls / self.log_floor) as f32
    }

    fn sel_of(&self, target: f32) -> f64 {
        let t = (target as f64).clamp(0.0, 1.0);
        ((1.0 - t) * self.log_floor).exp()
    }

    fn featurize(&self, q: &RangeQuery, out: &mut Vec<f32>) {
        out.clear();
        for (d, iv) in q.cols.iter().enumerate() {
            let (lo, hi) = self.bounds[d];
            let span = hi - lo;
            match iv {
                None => out.extend([0.0, 0.0, 1.0]),
                Some(iv) => {
                    let a = ((iv.lo.max(lo) - lo) / span).clamp(0.0, 1.0) as f32;
                    let b = ((iv.hi.min(hi) - lo) / span).clamp(0.0, 1.0) as f32;
                    out.extend([1.0, a, b]);
                }
            }
        }
        // bitmap summary: fraction of the materialised sample hit
        let mut hits = 0usize;
        for row in self.sample.chunks_exact(self.ncols) {
            if q.matches_row(row) {
                hits += 1;
            }
        }
        out.push(hits as f32 / self.nsample as f32);
    }
}

impl SelectivityEstimator for MscnLite {
    fn name(&self) -> &str {
        "MSCN"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        let mut feat = Vec::new();
        self.featurize(q, &mut feat);
        let mut out = Vec::new();
        let mlp = &mut self.mlp;
        mlp.predict(&feat, 1, &mut out);
        self.sel_of(out[0])
    }

    fn model_size_bytes(&self) -> usize {
        let mut mlp = self.mlp.clone();
        mlp.num_params() * 4 + self.sample.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{Column, ContColumn};
    use iam_data::{exact_selectivity, Table, WorkloadConfig, WorkloadGenerator};

    fn table(n: usize) -> Table {
        Table::new(
            "t",
            vec![
                Column::Continuous(ContColumn::new("a", (0..n).map(|i| i as f64).collect())),
                Column::Continuous(ContColumn::new(
                    "b",
                    (0..n).map(|i| ((i * 31) % n) as f64).collect(),
                )),
            ],
        )
        .unwrap()
    }

    fn workload(t: &Table, n: usize, seed: u64) -> Vec<(RangeQuery, f64)> {
        let mut g = WorkloadGenerator::new(t, WorkloadConfig::default(), seed);
        g.gen_queries(n)
            .into_iter()
            .map(|q| (q.normalize(t.ncols()).unwrap().0, exact_selectivity(t, &q)))
            .collect()
    }

    #[test]
    fn learns_the_workload_distribution() {
        let t = table(10_000);
        let train = workload(&t, 400, 1);
        let mut m = MscnLite::fit(&t, &train, MscnConfig { epochs: 40, ..Default::default() });
        let test = workload(&t, 60, 2);
        let mut errs: Vec<f64> = test
            .iter()
            .map(|(q, truth)| iam_data::q_error(*truth, m.estimate(q), t.nrows()))
            .collect();
        errs.sort_by(f64::total_cmp);
        let median = errs[errs.len() / 2];
        assert!(median < 2.5, "median q-error {median}");
    }

    #[test]
    fn target_scaling_round_trips() {
        let t = table(1000);
        let m =
            MscnLite::fit(&t, &workload(&t, 20, 3), MscnConfig { epochs: 1, ..Default::default() });
        for sel in [1.0, 0.1, 0.001, 1.0 / 1000.0] {
            let rt = m.sel_of(m.target_of(sel));
            assert!((rt.ln() - sel.ln()).abs() < 1e-6, "{sel} -> {rt}");
        }
    }

    #[test]
    fn feature_width_is_stable() {
        let t = table(500);
        let m =
            MscnLite::fit(&t, &workload(&t, 10, 4), MscnConfig { epochs: 1, ..Default::default() });
        let mut f = Vec::new();
        m.featurize(&RangeQuery::unconstrained(2), &mut f);
        assert_eq!(f.len(), 3 * 2 + 1);
        assert_eq!(f[f.len() - 1], 1.0); // everything matches the sample
    }
}
