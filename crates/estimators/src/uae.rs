//! UAE-lite and UAE-Q-lite: autoregressive models that also learn from
//! queries.
//!
//! The original UAE differentiates through progressive sampling to train an
//! AR model on query feedback. Reproducing that gradient path is out of
//! scope for a manual-backprop stack, so we use the substitution documented
//! in DESIGN.md: training queries are converted into *query-derived tuples*
//! — each training query contributes tuples drawn uniformly from its
//! region, in proportion to its true selectivity — and an AR model (the
//! same ResMADE/factorisation stack as Neurocard) is trained on:
//!
//! * **UAE-lite**: the real data *plus* the query-derived tuples (learning
//!   from both signals);
//! * **UAE-Q-lite**: the query-derived tuples only (query-only learning).
//!
//! This preserves the qualitative behaviour the paper reports: UAE tracks
//! Neurocard closely, UAE-Q inherits the workload's blind spots (skewed
//! data, tail queries).

use iam_core::{neurocard_lite, IamConfig, IamEstimator};
use iam_data::column::{CatColumn, Column, ContColumn};
use iam_data::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draw `total` query-derived tuples: query `q` contributes
/// `∝ max(sel_q, floor)` tuples sampled uniformly from its region; columns
/// the query leaves unconstrained are filled from a random data row (UAE
/// has data access) or uniformly over the column bounds (`data_access =
/// false`, UAE-Q).
fn query_tuples(
    table: &Table,
    training: &[(RangeQuery, f64)],
    total: usize,
    data_access: bool,
    seed: u64,
) -> Table {
    let ncols = table.ncols();
    let n = table.nrows();
    let mut rng = StdRng::seed_from_u64(seed);

    // per-column bounds (uniform fill for UAE-Q)
    let bounds: Vec<(f64, f64)> = table
        .columns
        .iter()
        .map(|c| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in 0..c.len() {
                let v = c.value_as_f64(r);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi.max(lo))
        })
        .collect();

    let weight_sum: f64 = training.iter().map(|&(_, s)| s.max(1.0 / n as f64)).sum();
    let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(total); ncols];
    let mut row = Vec::new();
    for (q, sel) in training {
        let share = sel.max(1.0 / n as f64) / weight_sum;
        let count = ((total as f64 * share).round() as usize).max(1);
        for _ in 0..count {
            if data_access {
                table.row_as_f64(rng.random_range(0..n), &mut row);
            } else {
                row.clear();
                row.extend(bounds.iter().map(|&(lo, hi)| lo + rng.random::<f64>() * (hi - lo)));
            }
            for (d, iv) in q.cols.iter().enumerate() {
                if let Some(iv) = iv {
                    let lo = iv.lo.max(bounds[d].0);
                    let hi = iv.hi.min(bounds[d].1);
                    if hi >= lo {
                        row[d] = lo + rng.random::<f64>() * (hi - lo);
                        // snap categorical codes to integers
                        if matches!(table.columns[d], Column::Categorical(_)) {
                            row[d] = row[d].round().clamp(bounds[d].0, bounds[d].1);
                        }
                    }
                }
            }
            for (d, col) in cols.iter_mut().enumerate() {
                col.push(row[d]);
            }
        }
    }

    // rebuild a table with the same column kinds
    let columns = table
        .columns
        .iter()
        .enumerate()
        .map(|(d, c)| match c {
            Column::Categorical(cc) => Column::Categorical(CatColumn::from_codes(
                cc.name.clone(),
                cols[d].iter().map(|&v| v as u32).collect(),
                cc.dict.clone(),
            )),
            Column::Continuous(cc) => {
                Column::Continuous(ContColumn::new(cc.name.clone(), cols[d].clone()))
            }
        })
        .collect();
    Table::new(format!("{}_qt", table.name), columns).expect("uniform column lengths")
}

/// Append `extra`'s rows to `base` (same schema).
fn concat_tables(base: &Table, extra: &Table) -> Table {
    let columns = base
        .columns
        .iter()
        .zip(&extra.columns)
        .map(|(a, b)| match (a, b) {
            (Column::Categorical(x), Column::Categorical(y)) => {
                let mut codes = x.codes.clone();
                codes.extend_from_slice(&y.codes);
                Column::Categorical(CatColumn::from_codes(x.name.clone(), codes, x.dict.clone()))
            }
            (Column::Continuous(x), Column::Continuous(y)) => {
                let mut values = x.values.clone();
                values.extend_from_slice(&y.values);
                Column::Continuous(ContColumn::new(x.name.clone(), values))
            }
            _ => panic!("schema mismatch"),
        })
        .collect();
    Table::new(base.name.clone(), columns).expect("uniform column lengths")
}

/// Train UAE-lite: AR model over data + query-derived tuples.
pub fn uae_lite(table: &Table, training: &[(RangeQuery, f64)], base: IamConfig) -> IamEstimator {
    let extra = query_tuples(table, training, table.nrows() / 4, true, base.seed ^ 0xAE);
    let augmented = concat_tables(table, &extra);
    let cfg = neurocard_lite(base);
    let mut est = IamEstimator::build_named(&augmented, cfg, Some("UAE"));
    est.train_epochs(&augmented, est.cfg.epochs);
    est
}

/// Train UAE-Q-lite: AR model over query-derived tuples only.
pub fn uae_q_lite(table: &Table, training: &[(RangeQuery, f64)], base: IamConfig) -> IamEstimator {
    let synth =
        query_tuples(table, training, table.nrows().clamp(1000, 50_000), false, base.seed ^ 0xAE0);
    let cfg = neurocard_lite(base);
    let mut est = IamEstimator::build_named(&synth, cfg, Some("UAE-Q"));
    est.train_epochs(&synth, est.cfg.epochs);
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::{exact_selectivity, WorkloadConfig, WorkloadGenerator};

    fn table(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..n {
            let c: f64 = rng.random::<f64>();
            a.push(c * 100.0);
            b.push(c * 100.0 + rng.random::<f64>() * 5.0);
        }
        Table::new(
            "t",
            vec![
                Column::Continuous(ContColumn::new("a", a)),
                Column::Continuous(ContColumn::new("b", b)),
            ],
        )
        .unwrap()
    }

    fn workload(t: &Table, n: usize, seed: u64) -> Vec<(RangeQuery, f64)> {
        let mut g = WorkloadGenerator::new(t, WorkloadConfig::default(), seed);
        g.gen_queries(n)
            .into_iter()
            .map(|q| (q.normalize(t.ncols()).unwrap().0, exact_selectivity(t, &q)))
            .collect()
    }

    fn quick() -> IamConfig {
        IamConfig {
            epochs: 3,
            hidden: vec![32, 32],
            embed_dim: 8,
            samples: 150,
            factorize_threshold: 256,
            seed: 5,
            ..IamConfig::default()
        }
    }

    #[test]
    fn query_tuples_respect_regions() {
        let t = table(2000, 1);
        let w = workload(&t, 30, 2);
        let synth = query_tuples(&t, &w, 2000, false, 3);
        assert!(synth.nrows() >= 30); // at least one tuple per query
                                      // every tuple lies inside the data bounding box
        let Column::Continuous(a) = &synth.columns[0] else { unreachable!() };
        assert!(a.values.iter().all(|&v| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn uae_estimates_reasonably() {
        let t = table(4000, 4);
        let w = workload(&t, 150, 5);
        use iam_data::SelectivityEstimator;
        let mut est = uae_lite(&t, &w, quick());
        assert_eq!(est.name(), "UAE");
        let test = workload(&t, 25, 6);
        let mut errs: Vec<f64> = test
            .iter()
            .map(|(q, truth)| iam_data::q_error(*truth, est.estimate(q), t.nrows()))
            .collect();
        errs.sort_by(f64::total_cmp);
        assert!(errs[errs.len() / 2] < 4.0, "median {}", errs[errs.len() / 2]);
    }

    #[test]
    fn uae_q_builds_without_data_rows() {
        let t = table(2000, 7);
        let w = workload(&t, 60, 8);
        use iam_data::SelectivityEstimator;
        let mut est = uae_q_lite(&t, &w, quick());
        assert_eq!(est.name(), "UAE-Q");
        let sel = est.estimate(&RangeQuery::unconstrained(2));
        assert!((sel - 1.0).abs() < 1e-9);
    }
}
