//! Kernel density estimation over a sample (Heimel/Kiefer-style), with
//! Scott's-rule bandwidth.
//!
//! Each sample point carries a product of per-dimension Gaussian kernels;
//! a range query integrates the kernel mass analytically through the normal
//! CDF, so `sel(q) = (1/m) Σ_s Π_d [Φ((hi−x_sd)/h_d) − Φ((lo−x_sd)/h_d)]`.

use iam_data::{RangeQuery, SelectivityEstimator, Table};
use iam_gmm::math::std_normal_cdf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The KDE estimator.
pub struct KdeEstimator {
    /// Row-major `m × d` sample.
    sample: Vec<f64>,
    /// Per-dimension bandwidths.
    bandwidth: Vec<f64>,
    m: usize,
    d: usize,
}

impl KdeEstimator {
    /// Build over `m` sampled rows.
    pub fn new(table: &Table, m: usize, seed: u64) -> Self {
        let n = table.nrows();
        let d = table.ncols();
        assert!(n > 0 && m >= 1);
        let m = m.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = rng.random_range(i..n);
            ids.swap(i, j);
        }
        let mut sample = Vec::with_capacity(m * d);
        let mut row = Vec::new();
        for &r in &ids[..m] {
            table.row_as_f64(r, &mut row);
            sample.extend_from_slice(&row);
        }
        // Scott's rule per dimension: h = σ · m^{-1/(d+4)}
        let factor = (m as f64).powf(-1.0 / (d as f64 + 4.0));
        let mut bandwidth = Vec::with_capacity(d);
        for dim in 0..d {
            let vals: Vec<f64> = (0..m).map(|s| sample[s * d + dim]).collect();
            let mean = vals.iter().sum::<f64>() / m as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m as f64;
            bandwidth.push((var.sqrt() * factor).max(1e-9));
        }
        KdeEstimator { sample, bandwidth, m, d }
    }

    /// Scale every bandwidth by `f` (the query-feedback tuning hook the
    /// original system exposes).
    pub fn scale_bandwidth(&mut self, f: f64) {
        assert!(f > 0.0);
        for h in &mut self.bandwidth {
            *h *= f;
        }
    }
}

impl SelectivityEstimator for KdeEstimator {
    fn name(&self) -> &str {
        "KDE"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        assert_eq!(q.cols.len(), self.d);
        let mut total = 0.0f64;
        for s in 0..self.m {
            let mut prob = 1.0f64;
            for dim in 0..self.d {
                let Some(iv) = &q.cols[dim] else { continue };
                let x = self.sample[s * self.d + dim];
                let h = self.bandwidth[dim];
                let upper =
                    if iv.hi == f64::INFINITY { 1.0 } else { std_normal_cdf((iv.hi - x) / h) };
                let lower =
                    if iv.lo == f64::NEG_INFINITY { 0.0 } else { std_normal_cdf((iv.lo - x) / h) };
                prob *= (upper - lower).max(0.0);
                if prob == 0.0 {
                    break;
                }
            }
            total += prob;
        }
        (total / self.m as f64).clamp(0.0, 1.0)
    }

    fn model_size_bytes(&self) -> usize {
        (self.sample.len() + self.bandwidth.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{Column, ContColumn};
    use iam_data::query::{Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table};

    fn smooth_table(n: usize) -> Table {
        // smooth unimodal data: KDE's best case
        let vals: Vec<f64> =
            (0..n).map(|i| ((i as f64 / n as f64) * std::f64::consts::PI).sin() * 100.0).collect();
        let other: Vec<f64> = (0..n).map(|i| (i % 1000) as f64).collect();
        Table::new(
            "s",
            vec![
                Column::Continuous(ContColumn::new("a", vals)),
                Column::Continuous(ContColumn::new("b", other)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn accurate_on_smooth_continuous_data() {
        let t = smooth_table(20_000);
        let mut kde = KdeEstimator::new(&t, 2000, 1);
        for bound in [25.0, 50.0, 90.0] {
            let q = Query::new(vec![Predicate { col: 0, op: Op::Le, value: bound }]);
            let (rq, _) = q.normalize(2).unwrap();
            let truth = exact_selectivity(&t, &q);
            let est = kde.estimate(&rq);
            assert!((est - truth).abs() < 0.05, "≤{bound}: est {est} truth {truth}");
        }
    }

    #[test]
    fn point_queries_on_discrete_data_are_poor() {
        // the documented weakness: Gaussian kernels smear discrete values
        let n = 5000;
        let vals: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let t = Table::new("d", vec![Column::Continuous(ContColumn::new("a", vals))]).unwrap();
        let mut kde = KdeEstimator::new(&t, 500, 2);
        let q = Query::new(vec![Predicate { col: 0, op: Op::Eq, value: 0.0 }]);
        let (rq, _) = q.normalize(1).unwrap();
        // a point query has zero kernel mass
        assert!(kde.estimate(&rq) < 0.01, "{}", kde.estimate(&rq));
    }

    #[test]
    fn bandwidth_scaling_hook() {
        let t = smooth_table(2000);
        let mut kde = KdeEstimator::new(&t, 200, 3);
        let q = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 10.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        let before = kde.estimate(&rq);
        kde.scale_bandwidth(10.0);
        let after = kde.estimate(&rq);
        assert_ne!(before, after);
    }

    #[test]
    fn unconstrained_is_one() {
        let t = smooth_table(500);
        let mut kde = KdeEstimator::new(&t, 100, 4);
        assert!((kde.estimate(&RangeQuery::unconstrained(2)) - 1.0).abs() < 1e-9);
    }
}
