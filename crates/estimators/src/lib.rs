//! Baseline selectivity estimators from the paper's evaluation (§6.1.2).
//!
//! Every estimator implements `iam_data::SelectivityEstimator`, answering
//! normalised conjunctive range queries:
//!
//! * [`sampling`] — uniform row sample sized to IAM's space budget;
//! * [`postgres`] — 1-D histograms + MCVs with attribute independence
//!   (Postgres's documented row-estimation model);
//! * [`mhist`] — MaxDiff-style multidimensional histogram;
//! * [`bayesnet`] — Chow-Liu tree Bayesian network over discretised bins;
//! * [`kde`] — Gaussian-kernel density over a sample (Scott's rule);
//! * [`quicksel`] — uniform mixture model fitted to a training workload;
//! * [`spn`] — DeepDB-style sum-product network (LearnSPN-lite);
//! * [`mscn`] — query-driven MLP over predicate features + sample bitmap;
//! * [`uae`] — AR model trained on data *and* query-derived tuples
//!   (UAE-lite; `uae_q` trains on query-derived tuples only).

#![deny(missing_docs)]

pub mod bayesnet;
pub mod kde;
pub mod mhist;
pub mod mscn;
pub mod postgres;
pub mod quicksel;
pub mod sampling;
pub mod spn;
pub mod uae;

pub use bayesnet::ChowLiuNet;
pub use kde::KdeEstimator;
pub use mhist::Mhist;
pub use mscn::MscnLite;
pub use postgres::Postgres1d;
pub use quicksel::QuickSelLite;
pub use sampling::SamplingEstimator;
pub use spn::SpnEstimator;
pub use uae::{uae_lite, uae_q_lite};
