//! QuickSel-style estimator: a uniform mixture model fitted to a training
//! workload (query-driven).
//!
//! Each training query's region becomes a candidate uniform bucket; bucket
//! weights `w` are fitted so the mixture reproduces the training queries'
//! true selectivities (`min ‖Gw − s‖²` over the simplex, solved by
//! projected gradient descent). Estimation is `Σ_k w_k · vol(q ∩ B_k) /
//! vol(B_k)` — the uniformity-within-bucket assumption the paper blames for
//! its large errors on correlated, high-dimensional data.

use iam_data::{RangeQuery, SelectivityEstimator, Table};

/// An axis-aligned bucket (one per retained training query).
struct BucketBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BucketBox {
    /// Fractional overlap of a query with this bucket, assuming uniformity.
    fn overlap_fraction(&self, q: &RangeQuery) -> f64 {
        let mut frac = 1.0f64;
        for (d, iv) in q.cols.iter().enumerate() {
            let Some(iv) = iv else { continue };
            let (blo, bhi) = (self.lo[d], self.hi[d]);
            let lo = iv.lo.max(blo);
            let hi = iv.hi.min(bhi);
            if hi < lo {
                return 0.0;
            }
            let width = bhi - blo;
            frac *= if width > 0.0 { ((hi - lo) / width).min(1.0) } else { 1.0 };
        }
        frac
    }
}

/// The QuickSel-lite estimator.
pub struct QuickSelLite {
    buckets: Vec<BucketBox>,
    weights: Vec<f64>,
    ncols: usize,
}

impl QuickSelLite {
    /// Fit from `(query, true-selectivity)` training pairs. `max_buckets`
    /// caps the mixture size (training queries beyond it are used for the
    /// weight fit only).
    pub fn fit(
        table: &Table,
        training: &[(RangeQuery, f64)],
        max_buckets: usize,
        gd_iters: usize,
    ) -> Self {
        let ncols = table.ncols();
        // data bounding box clamps open-ended predicates
        let (mut glo, mut ghi) = (vec![f64::INFINITY; ncols], vec![f64::NEG_INFINITY; ncols]);
        for (d, c) in table.columns.iter().enumerate() {
            for r in 0..c.len() {
                let v = c.value_as_f64(r);
                glo[d] = glo[d].min(v);
                ghi[d] = ghi[d].max(v);
            }
        }
        // one bucket per (subsampled) training query region
        let stride = training.len().div_ceil(max_buckets.max(1)).max(1);
        let mut buckets = Vec::new();
        for (q, _) in training.iter().step_by(stride) {
            let mut lo = glo.clone();
            let mut hi = ghi.clone();
            for (d, iv) in q.cols.iter().enumerate() {
                if let Some(iv) = iv {
                    lo[d] = iv.lo.max(glo[d]);
                    hi[d] = iv.hi.min(ghi[d]);
                    if hi[d] < lo[d] {
                        hi[d] = lo[d];
                    }
                }
            }
            buckets.push(BucketBox { lo, hi });
        }
        // plus one background bucket covering everything
        buckets.push(BucketBox { lo: glo, hi: ghi });
        let nb = buckets.len();

        // design matrix G[t][k] = overlap fraction of training query t with
        // bucket k
        let g: Vec<Vec<f64>> = training
            .iter()
            .map(|(q, _)| buckets.iter().map(|b| b.overlap_fraction(q)).collect())
            .collect();
        let s: Vec<f64> = training.iter().map(|&(_, sel)| sel).collect();

        // exponentiated-gradient descent on ‖Gw − s‖² over the simplex
        // (mirror descent respects the w ≥ 0, Σw = 1 constraints natively)
        let mut w = vec![1.0 / nb as f64; nb];
        let lr = 4.0 / training.len().max(1) as f64;
        for _ in 0..gd_iters {
            let mut grad = vec![0.0f64; nb];
            for (row, &target) in g.iter().zip(&s) {
                let pred: f64 = row.iter().zip(&w).map(|(a, b)| a * b).sum();
                let err = pred - target;
                for (gk, &rk) in grad.iter_mut().zip(row) {
                    *gk += 2.0 * err * rk;
                }
            }
            for (wk, gk) in w.iter_mut().zip(&grad) {
                *wk *= (-lr * gk).clamp(-30.0, 30.0).exp();
            }
            let total: f64 = w.iter().sum();
            if total > 0.0 {
                for wk in &mut w {
                    *wk /= total;
                }
            } else {
                w.fill(1.0 / nb as f64);
            }
        }

        QuickSelLite { buckets, weights: w, ncols }
    }
}

impl SelectivityEstimator for QuickSelLite {
    fn name(&self) -> &str {
        "QuickSel"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        assert_eq!(q.cols.len(), self.ncols);
        self.buckets
            .iter()
            .zip(&self.weights)
            .map(|(b, &w)| w * b.overlap_fraction(q))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    fn model_size_bytes(&self) -> usize {
        self.buckets.len() * (2 * self.ncols + 1) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{Column, ContColumn};
    use iam_data::{exact_selectivity, Table, WorkloadConfig, WorkloadGenerator};

    fn uniform_table(n: usize) -> Table {
        Table::new(
            "u",
            vec![
                Column::Continuous(ContColumn::new("a", (0..n).map(|i| i as f64).collect())),
                Column::Continuous(ContColumn::new(
                    "b",
                    (0..n).map(|i| ((i * 7919) % n) as f64).collect(),
                )),
            ],
        )
        .unwrap()
    }

    fn training_set(t: &Table, n: usize, seed: u64) -> Vec<(RangeQuery, f64)> {
        let mut g = WorkloadGenerator::new(t, WorkloadConfig::default(), seed);
        g.gen_queries(n)
            .into_iter()
            .map(|q| {
                let truth = exact_selectivity(t, &q);
                (q.normalize(t.ncols()).unwrap().0, truth)
            })
            .collect()
    }

    #[test]
    fn fits_training_workload_on_uniform_data() {
        let t = uniform_table(5000);
        let training = training_set(&t, 200, 1);
        let mut qs = QuickSelLite::fit(&t, &training, 100, 1000);
        // held-out queries on genuinely uniform data: UMM's best case.
        // QuickSel is a coarse model even here, so check the *mean* error.
        let test = training_set(&t, 50, 2);
        let mut total = 0.0;
        for (rq, truth) in &test {
            total += (qs.estimate(rq) - truth).abs();
        }
        let mean = total / test.len() as f64;
        assert!(mean < 0.12, "mean absolute error {mean}");
    }

    #[test]
    fn weights_form_a_distribution() {
        let t = uniform_table(1000);
        let training = training_set(&t, 50, 3);
        let qs = QuickSelLite::fit(&t, &training, 30, 100);
        assert!((qs.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(qs.weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn unconstrained_estimates_about_one() {
        let t = uniform_table(1000);
        let training = training_set(&t, 50, 4);
        let mut qs = QuickSelLite::fit(&t, &training, 30, 100);
        let est = qs.estimate(&RangeQuery::unconstrained(2));
        assert!(est > 0.95, "{est}");
    }

    #[test]
    fn bucket_cap_respected() {
        let t = uniform_table(1000);
        let training = training_set(&t, 100, 5);
        let qs = QuickSelLite::fit(&t, &training, 20, 10);
        assert!(qs.buckets.len() <= 21); // cap + background
    }
}
