//! Postgres-style estimator: per-column statistics + attribute independence.
//!
//! Mirrors the documented Postgres row-estimation model: each column keeps
//! a most-common-values (MCV) list with frequencies and an equi-depth
//! histogram over the remaining values; single-predicate selectivities come
//! from MCV lookups plus linear interpolation inside histogram buckets, and
//! conjunctions multiply per-column selectivities (the independence
//! assumption the paper blames for its large errors).

use iam_data::{Column, Interval, RangeQuery, SelectivityEstimator, Table};

/// Per-column statistics.
struct ColumnStats {
    /// Most common values and their frequencies (fraction of all rows).
    mcv: Vec<(f64, f64)>,
    /// Equi-depth histogram bounds over non-MCV values.
    hist_bounds: Vec<f64>,
    /// Fraction of rows not covered by the MCV list.
    hist_frac: f64,
    /// Distinct count of non-MCV values (for equality estimates).
    rest_distinct: usize,
}

/// The Postgres-1D estimator.
pub struct Postgres1d {
    cols: Vec<ColumnStats>,
}

/// Number of MCVs and histogram buckets (Postgres's default statistics
/// target is 100 of each).
const STATS_TARGET: usize = 100;

impl Postgres1d {
    /// Collect statistics from `table`.
    pub fn new(table: &Table) -> Self {
        let n = table.nrows().max(1);
        let cols = table
            .columns
            .iter()
            .map(|c| {
                let mut values: Vec<f64> = (0..c.len()).map(|r| c.value_as_f64(r)).collect();
                values.sort_unstable_by(f64::total_cmp);
                Self::column_stats(&values, n, matches!(c, Column::Categorical(_)))
            })
            .collect();
        Postgres1d { cols }
    }

    fn column_stats(sorted: &[f64], n: usize, _categorical: bool) -> ColumnStats {
        // frequency count over sorted runs
        let mut freqs: Vec<(f64, usize)> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let v = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == v {
                j += 1;
            }
            freqs.push((v, j - i));
            i = j;
        }
        // MCVs: values appearing more than once, most frequent first
        let mut by_freq = freqs.clone();
        by_freq.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let mcv: Vec<(f64, f64)> = by_freq
            .iter()
            .take(STATS_TARGET)
            .filter(|(_, c)| *c > 1)
            .map(|&(v, c)| (v, c as f64 / n as f64))
            .collect();
        let mcv_set: Vec<f64> = mcv.iter().map(|&(v, _)| v).collect();

        // histogram over the remaining values
        let rest: Vec<f64> = sorted.iter().copied().filter(|v| !mcv_set.contains(v)).collect();
        let hist_frac = rest.len() as f64 / n as f64;
        let rest_distinct = freqs.len().saturating_sub(mcv.len()).max(1);
        let mut hist_bounds = Vec::new();
        if !rest.is_empty() {
            let b = STATS_TARGET.min(rest.len());
            for k in 0..=b {
                hist_bounds.push(rest[(k * (rest.len() - 1)) / b.max(1)]);
            }
        }
        ColumnStats { mcv, hist_bounds, hist_frac, rest_distinct }
    }

    /// Selectivity of `iv` on one column.
    fn column_selectivity(stats: &ColumnStats, iv: &Interval) -> f64 {
        // MCV mass inside the interval
        let mcv_mass: f64 = stats.mcv.iter().filter(|(v, _)| iv.contains(*v)).map(|(_, f)| f).sum();
        // histogram mass with linear interpolation inside buckets
        let hist_mass = if stats.hist_bounds.len() >= 2 {
            let nb = stats.hist_bounds.len() - 1;
            let per_bucket = stats.hist_frac / nb as f64;
            let mut mass = 0.0;
            for k in 0..nb {
                let (blo, bhi) = (stats.hist_bounds[k], stats.hist_bounds[k + 1]);
                if bhi < blo {
                    continue;
                }
                let lo = iv.lo.max(blo);
                let hi = iv.hi.min(bhi);
                if hi < lo {
                    continue;
                }
                let width = bhi - blo;
                let frac = if width > 0.0 { ((hi - lo) / width).clamp(0.0, 1.0) } else { 1.0 };
                mass += per_bucket * frac;
            }
            mass
        } else {
            0.0
        };
        // point queries on non-MCV values: uniform share of the remainder
        let point_adjust = if iv.lo == iv.hi && !iv.lo_strict && !iv.hi_strict {
            if stats.mcv.iter().any(|(v, _)| *v == iv.lo) {
                0.0 // already counted via MCV
            } else {
                stats.hist_frac / stats.rest_distinct as f64
            }
        } else {
            return (mcv_mass + hist_mass).clamp(0.0, 1.0);
        };
        (mcv_mass + point_adjust).clamp(0.0, 1.0)
    }
}

impl SelectivityEstimator for Postgres1d {
    fn name(&self) -> &str {
        "Postgres"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        let mut sel = 1.0;
        for (stats, iv) in self.cols.iter().zip(&q.cols) {
            if let Some(iv) = iv {
                if iv.is_full() {
                    continue;
                }
                sel *= Self::column_selectivity(stats, iv);
            }
        }
        sel.clamp(0.0, 1.0)
    }

    fn model_size_bytes(&self) -> usize {
        self.cols.iter().map(|c| (c.mcv.len() * 2 + c.hist_bounds.len() + 2) * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{CatColumn, ContColumn};
    use iam_data::query::{Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table};

    fn table() -> Table {
        let n = 10_000;
        Table::new(
            "t",
            vec![
                Column::Continuous(ContColumn::new("u", (0..n).map(|i| i as f64).collect())),
                Column::Categorical(CatColumn::from_codes_dense(
                    "c",
                    (0..n).map(|i| (i % 10) as u32).collect(),
                    10,
                )),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_range_is_accurate() {
        let t = table();
        let mut pg = Postgres1d::new(&t);
        let q = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 2499.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        let truth = exact_selectivity(&t, &q);
        assert!((pg.estimate(&rq) - truth).abs() < 0.02, "{} vs {truth}", pg.estimate(&rq));
    }

    #[test]
    fn categorical_equality_uses_mcv() {
        let t = table();
        let mut pg = Postgres1d::new(&t);
        let q = Query::new(vec![Predicate { col: 1, op: Op::Eq, value: 3.0 }]);
        let (rq, _) = q.normalize(2).unwrap();
        assert!((pg.estimate(&rq) - 0.1).abs() < 0.01);
    }

    #[test]
    fn independence_assumption_multiplies() {
        // perfectly correlated pair: independence underestimates badly
        let n = 1000;
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = Table::new(
            "corr",
            vec![
                Column::Continuous(ContColumn::new("a", vals.clone())),
                Column::Continuous(ContColumn::new("b", vals)),
            ],
        )
        .unwrap();
        let mut pg = Postgres1d::new(&t);
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Le, value: 99.0 },
            Predicate { col: 1, op: Op::Le, value: 99.0 },
        ]);
        let (rq, _) = q.normalize(2).unwrap();
        let truth = exact_selectivity(&t, &q); // 0.1
        let est = pg.estimate(&rq); // ≈ 0.01 under independence
        assert!(est < truth / 5.0, "independence should underestimate: {est} vs {truth}");
    }

    #[test]
    fn unconstrained_is_one() {
        let t = table();
        let mut pg = Postgres1d::new(&t);
        assert_eq!(pg.estimate(&RangeQuery::unconstrained(2)), 1.0);
    }

    #[test]
    fn model_size_is_small() {
        let t = table();
        let pg = Postgres1d::new(&t);
        assert!(pg.model_size_bytes() < 10_000, "{}", pg.model_size_bytes());
    }
}
