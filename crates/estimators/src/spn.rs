//! DeepDB-style sum-product network (LearnSPN-lite).
//!
//! Structure learning follows the LearnSPN recipe DeepDB uses: recursively
//! try to split the *columns* into groups with no pairwise correlation
//! above a threshold (→ product node, independence across groups); when no
//! such split exists, split the *rows* into two clusters by a lightweight
//! 2-means (→ sum node weighted by cluster fractions). Leaves are
//! single-column histograms — uniform within buckets for continuous data,
//! exact frequencies for small categorical domains. These leaf/independence
//! choices are exactly the weaknesses the paper observes (§6.2: tail errors
//! on correlated, non-linear data).

use iam_data::{Column, Interval, RangeQuery, SelectivityEstimator, Table};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Tuning parameters for structure learning.
#[derive(Debug, Clone)]
pub struct SpnConfig {
    /// Stop splitting rows below this count.
    pub min_rows: usize,
    /// Absolute correlation below which columns are declared independent.
    pub independence_threshold: f64,
    /// Histogram buckets per continuous leaf.
    pub leaf_buckets: usize,
    /// RNG seed for row clustering.
    pub seed: u64,
}

impl Default for SpnConfig {
    fn default() -> Self {
        SpnConfig { min_rows: 512, independence_threshold: 0.3, leaf_buckets: 64, seed: 42 }
    }
}

enum Node {
    Sum {
        weights: Vec<f64>,
        children: Vec<Node>,
    },
    Product {
        children: Vec<Node>,
    },
    /// Histogram leaf over one column.
    Leaf {
        col: usize,
        /// Bucket edges (`nb + 1`).
        edges: Vec<f64>,
        /// Bucket mass (sums to 1).
        mass: Vec<f64>,
        /// Exact categorical frequencies when the domain was small.
        exact: bool,
    },
}

/// The SPN estimator.
pub struct SpnEstimator {
    root: Node,
    ncols: usize,
    size: usize,
}

impl SpnEstimator {
    /// Learn an SPN from `table`.
    pub fn new(table: &Table, cfg: SpnConfig) -> Self {
        let n = table.nrows();
        let ncols = table.ncols();
        assert!(n > 0 && ncols >= 1);
        let data: Vec<Vec<f64>> =
            table.columns.iter().map(|c| (0..n).map(|r| c.value_as_f64(r)).collect()).collect();
        let cat_domain: Vec<Option<usize>> = table
            .columns
            .iter()
            .map(|c| match c {
                Column::Categorical(cc) if cc.domain_size() <= 256 => Some(cc.domain_size()),
                _ => None,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let rows: Vec<usize> = (0..n).collect();
        let cols: Vec<usize> = (0..ncols).collect();
        let root = Self::learn(&data, &cat_domain, rows, cols, &cfg, &mut rng, 0);
        let mut size = 0;
        Self::measure(&root, &mut size);
        SpnEstimator { root, ncols, size }
    }

    fn measure(node: &Node, size: &mut usize) {
        match node {
            Node::Sum { weights, children } => {
                *size += weights.len() * 8;
                children.iter().for_each(|c| Self::measure(c, size));
            }
            Node::Product { children } => {
                children.iter().for_each(|c| Self::measure(c, size));
            }
            Node::Leaf { edges, mass, .. } => *size += (edges.len() + mass.len()) * 8,
        }
    }

    fn learn(
        data: &[Vec<f64>],
        cat_domain: &[Option<usize>],
        rows: Vec<usize>,
        cols: Vec<usize>,
        cfg: &SpnConfig,
        rng: &mut StdRng,
        depth: usize,
    ) -> Node {
        if cols.len() == 1 {
            return Self::leaf(data, cat_domain, &rows, cols[0], cfg);
        }
        if rows.len() < cfg.min_rows || depth > 24 {
            // fully factorise the remainder
            let children =
                cols.iter().map(|&c| Self::leaf(data, cat_domain, &rows, c, cfg)).collect();
            return Node::Product { children };
        }

        // try a column split: connected components of the |ρ| > τ graph
        let groups = Self::correlation_groups(data, &rows, &cols, cfg.independence_threshold);
        if groups.len() > 1 {
            let children = groups
                .into_iter()
                .map(|g| Self::learn(data, cat_domain, rows.clone(), g, cfg, rng, depth + 1))
                .collect();
            return Node::Product { children };
        }

        // otherwise split rows: 2-means on per-column standardised values
        match Self::two_means(data, &rows, &cols, rng) {
            Some((a, b)) => {
                let total = rows.len() as f64;
                let weights = vec![a.len() as f64 / total, b.len() as f64 / total];
                let children = vec![
                    Self::learn(data, cat_domain, a, cols.clone(), cfg, rng, depth + 1),
                    Self::learn(data, cat_domain, b, cols, cfg, rng, depth + 1),
                ];
                Node::Sum { weights, children }
            }
            None => {
                let children =
                    cols.iter().map(|&c| Self::leaf(data, cat_domain, &rows, c, cfg)).collect();
                Node::Product { children }
            }
        }
    }

    /// Pearson |ρ| connected components over the candidate columns.
    fn correlation_groups(
        data: &[Vec<f64>],
        rows: &[usize],
        cols: &[usize],
        threshold: f64,
    ) -> Vec<Vec<usize>> {
        let k = cols.len();
        let nf = rows.len() as f64;
        let stats: Vec<(f64, f64)> = cols
            .iter()
            .map(|&c| {
                let mean = rows.iter().map(|&r| data[c][r]).sum::<f64>() / nf;
                let var = rows.iter().map(|&r| (data[c][r] - mean).powi(2)).sum::<f64>() / nf;
                (mean, var.sqrt().max(1e-12))
            })
            .collect();
        // union-find
        let mut parent: Vec<usize> = (0..k).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for i in 0..k {
            for j in (i + 1)..k {
                let (mi, si) = stats[i];
                let (mj, sj) = stats[j];
                let cov = rows
                    .iter()
                    .map(|&r| (data[cols[i]][r] - mi) * (data[cols[j]][r] - mj))
                    .sum::<f64>()
                    / nf;
                if (cov / (si * sj)).abs() > threshold {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
            }
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &c) in cols.iter().enumerate().take(k) {
            let r = find(&mut parent, i);
            groups[r].push(c);
        }
        groups.retain(|g| !g.is_empty());
        groups
    }

    /// Lightweight 2-means over standardised columns.
    fn two_means(
        data: &[Vec<f64>],
        rows: &[usize],
        cols: &[usize],
        rng: &mut StdRng,
    ) -> Option<(Vec<usize>, Vec<usize>)> {
        let nf = rows.len() as f64;
        let stats: Vec<(f64, f64)> = cols
            .iter()
            .map(|&c| {
                let mean = rows.iter().map(|&r| data[c][r]).sum::<f64>() / nf;
                let var = rows.iter().map(|&r| (data[c][r] - mean).powi(2)).sum::<f64>() / nf;
                (mean, var.sqrt().max(1e-12))
            })
            .collect();
        let feat = |r: usize, out: &mut Vec<f64>| {
            out.clear();
            for (ci, &c) in cols.iter().enumerate() {
                out.push((data[c][r] - stats[ci].0) / stats[ci].1);
            }
        };
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        feat(rows[rng.random_range(0..rows.len())], &mut ca);
        feat(rows[rng.random_range(0..rows.len())], &mut cb);
        let mut assign = vec![false; rows.len()];
        let mut buf = Vec::new();
        for _ in 0..8 {
            // assignment
            for (i, &r) in rows.iter().enumerate() {
                feat(r, &mut buf);
                let da: f64 = buf.iter().zip(&ca).map(|(x, c)| (x - c) * (x - c)).sum();
                let db: f64 = buf.iter().zip(&cb).map(|(x, c)| (x - c) * (x - c)).sum();
                assign[i] = db < da;
            }
            // update
            let (mut na, mut nb) = (0usize, 0usize);
            let mut suma = vec![0.0; cols.len()];
            let mut sumb = vec![0.0; cols.len()];
            for (i, &r) in rows.iter().enumerate() {
                feat(r, &mut buf);
                if assign[i] {
                    nb += 1;
                    for (s, x) in sumb.iter_mut().zip(&buf) {
                        *s += x;
                    }
                } else {
                    na += 1;
                    for (s, x) in suma.iter_mut().zip(&buf) {
                        *s += x;
                    }
                }
            }
            if na == 0 || nb == 0 {
                return None;
            }
            for (c, s) in ca.iter_mut().zip(&suma) {
                *c = s / na as f64;
            }
            for (c, s) in cb.iter_mut().zip(&sumb) {
                *c = s / nb as f64;
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (i, &r) in rows.iter().enumerate() {
            if assign[i] {
                b.push(r);
            } else {
                a.push(r);
            }
        }
        if a.is_empty() || b.is_empty() {
            None
        } else {
            Some((a, b))
        }
    }

    fn leaf(
        data: &[Vec<f64>],
        cat_domain: &[Option<usize>],
        rows: &[usize],
        col: usize,
        cfg: &SpnConfig,
    ) -> Node {
        let nf = rows.len() as f64;
        if let Some(domain) = cat_domain[col] {
            // exact categorical frequencies; edges are the code points
            let mut mass = vec![0.0f64; domain];
            for &r in rows {
                mass[data[col][r] as usize] += 1.0;
            }
            for m in &mut mass {
                *m /= nf;
            }
            let edges = (0..=domain).map(|c| c as f64).collect();
            return Node::Leaf { col, edges, mass, exact: true };
        }
        // equi-depth continuous histogram
        let mut vals: Vec<f64> = rows.iter().map(|&r| data[col][r]).collect();
        vals.sort_unstable_by(f64::total_cmp);
        let nb = cfg.leaf_buckets.min(vals.len()).max(1);
        let mut edges = Vec::with_capacity(nb + 1);
        for k in 0..=nb {
            edges.push(vals[(k * (vals.len() - 1)) / nb]);
        }
        let mass = vec![1.0 / nb as f64; nb];
        Node::Leaf { col, edges, mass, exact: false }
    }

    fn eval(node: &Node, q: &RangeQuery) -> f64 {
        match node {
            Node::Sum { weights, children } => {
                weights.iter().zip(children).map(|(&w, c)| w * Self::eval(c, q)).sum()
            }
            Node::Product { children } => children.iter().map(|c| Self::eval(c, q)).product(),
            Node::Leaf { col, edges, mass, exact } => match &q.cols[*col] {
                None => 1.0,
                Some(iv) => Self::leaf_mass(edges, mass, *exact, iv),
            },
        }
    }

    fn leaf_mass(edges: &[f64], mass: &[f64], exact: bool, iv: &Interval) -> f64 {
        if exact {
            // per-code mass: edges are 0..=domain, mass[c] is P(code = c)
            return mass
                .iter()
                .enumerate()
                .filter(|(c, _)| iv.contains(*c as f64))
                .map(|(_, &m)| m)
                .sum();
        }
        let nb = mass.len();
        let lo = if iv.lo == f64::NEG_INFINITY { edges[0] } else { iv.lo };
        let hi = if iv.hi == f64::INFINITY { edges[nb] } else { iv.hi };
        let mut total = 0.0;
        for j in 0..nb {
            let (blo, bhi) = (edges[j], edges[j + 1]);
            let width = bhi - blo;
            let overlap = (hi.min(bhi) - lo.max(blo)).max(0.0);
            total += mass[j]
                * if width > 0.0 {
                    (overlap / width).min(1.0)
                } else {
                    f64::from(u8::from(lo <= blo && blo <= hi))
                };
        }
        total
    }
}

impl SelectivityEstimator for SpnEstimator {
    fn name(&self) -> &str {
        "DeepDB"
    }

    fn estimate(&mut self, q: &RangeQuery) -> f64 {
        assert_eq!(q.cols.len(), self.ncols);
        Self::eval(&self.root, q).clamp(0.0, 1.0)
    }

    fn model_size_bytes(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iam_data::column::{CatColumn, ContColumn};
    use iam_data::query::{Op, Predicate, Query};
    use iam_data::{exact_selectivity, Table};

    fn clustered(n: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cat = Vec::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..n {
            let c = rng.random_range(0..3u32);
            cat.push(c);
            a.push(c as f64 * 100.0 + rng.random::<f64>() * 10.0);
            b.push(c as f64 * -50.0 + rng.random::<f64>() * 5.0);
        }
        Table::new(
            "cl",
            vec![
                Column::Categorical(CatColumn::from_codes_dense("c", cat, 3)),
                Column::Continuous(ContColumn::new("a", a)),
                Column::Continuous(ContColumn::new("b", b)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn learns_cluster_structure() {
        let t = clustered(6000, 1);
        let mut spn = SpnEstimator::new(&t, SpnConfig::default());
        // cluster-consistent query
        let q = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 2.0 },
            Predicate { col: 1, op: Op::Ge, value: 150.0 },
        ]);
        let (rq, _) = q.normalize(3).unwrap();
        let truth = exact_selectivity(&t, &q);
        let est = spn.estimate(&rq);
        assert!((est - truth).abs() < 0.05, "est {est} truth {truth}");
        // cluster-contradicting query ≈ 0
        let q0 = Query::new(vec![
            Predicate { col: 0, op: Op::Eq, value: 0.0 },
            Predicate { col: 1, op: Op::Ge, value: 150.0 },
        ]);
        let (rq0, _) = q0.normalize(3).unwrap();
        assert!(spn.estimate(&rq0) < 0.03, "{}", spn.estimate(&rq0));
    }

    #[test]
    fn marginals_are_accurate() {
        let t = clustered(6000, 2);
        let mut spn = SpnEstimator::new(&t, SpnConfig::default());
        let q = Query::new(vec![Predicate { col: 0, op: Op::Le, value: 0.0 }]);
        let (rq, _) = q.normalize(3).unwrap();
        let truth = exact_selectivity(&t, &q);
        assert!((spn.estimate(&rq) - truth).abs() < 0.02);
    }

    #[test]
    fn unconstrained_is_one() {
        let t = clustered(1000, 3);
        let mut spn = SpnEstimator::new(&t, SpnConfig::default());
        assert!((spn.estimate(&RangeQuery::unconstrained(3)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn model_size_positive_and_bounded() {
        let t = clustered(3000, 4);
        let spn = SpnEstimator::new(&t, SpnConfig::default());
        assert!(spn.model_size_bytes() > 0);
        assert!(spn.model_size_bytes() < 4_000_000);
    }
}
