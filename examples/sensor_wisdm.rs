//! Sensor analytics demo: mixed categorical/continuous predicates over a
//! WISDM-like accelerometer dataset — "how many high-energy readings did
//! subject S record during activity A?"
//!
//! Also demonstrates the harness-level query algebra: `≠` predicates and
//! disjunctions via inclusion–exclusion.
//!
//! ```sh
//! cargo run --release --example sensor_wisdm
//! ```

use iam_core::{IamConfig, IamEstimator};
use iam_data::query::{Op, Predicate, Query};
use iam_data::synth::Dataset;
use iam_data::{exact_selectivity, q_error, EstimatorHarness};

fn main() {
    let table = Dataset::Wisdm.generate(30_000, 11);
    println!(
        "WISDM-like dataset: {} rows × {} cols (subject, activity, x, y, z)",
        table.nrows(),
        table.ncols()
    );

    let cfg = IamConfig { epochs: 6, samples: 512, ..IamConfig::small() };
    let mut iam = IamEstimator::fit(&table, cfg);
    println!("trained; model {:.1} KB", {
        use iam_data::SelectivityEstimator;
        iam.model_size_bytes() as f64 / 1024.0
    });

    // analyst-style questions
    let ncols = table.ncols();
    let questions: Vec<(&str, Query)> = vec![
        (
            "subject 03, activity 05, x > 5",
            Query::new(vec![
                Predicate { col: 0, op: Op::Eq, value: 3.0 },
                Predicate { col: 1, op: Op::Eq, value: 5.0 },
                Predicate { col: 2, op: Op::Gt, value: 5.0 },
            ]),
        ),
        (
            "any subject but 00, burst on all axes",
            Query::new(vec![
                Predicate { col: 0, op: Op::Ne, value: 0.0 },
                Predicate { col: 2, op: Op::Ge, value: 20.0 },
                Predicate { col: 3, op: Op::Ge, value: 20.0 },
                Predicate { col: 4, op: Op::Ge, value: 20.0 },
            ]),
        ),
        (
            "activities 0-3, y in [-5, 5]",
            Query::new(vec![
                Predicate { col: 1, op: Op::Le, value: 3.0 },
                Predicate { col: 3, op: Op::Ge, value: -5.0 },
                Predicate { col: 3, op: Op::Le, value: 5.0 },
            ]),
        ),
    ];

    println!("\n{:<42} {:>10} {:>10} {:>8}", "question", "actual", "estimate", "q-err");
    for (desc, q) in &questions {
        let truth = exact_selectivity(&table, q);
        // Ne is handled by the harness via inclusion-exclusion
        let est = EstimatorHarness::estimate_query(&mut iam, q, ncols);
        println!(
            "{desc:<42} {truth:>10.5} {est:>10.5} {:>8.2}",
            q_error(truth, est, table.nrows())
        );
    }

    // disjunction: sedentary OR vigorous activity codes
    let d1 = Query::new(vec![Predicate { col: 1, op: Op::Le, value: 2.0 }]);
    let d2 = Query::new(vec![Predicate { col: 1, op: Op::Ge, value: 15.0 }]);
    let est = EstimatorHarness::estimate_disjunction(&mut iam, &[d1.clone(), d2.clone()], ncols);
    let truth = {
        let a = exact_selectivity(&table, &d1);
        let b = exact_selectivity(&table, &d2);
        a + b // disjoint ranges
    };
    println!(
        "{:<42} {truth:>10.5} {est:>10.5} {:>8.2}",
        "activity <= 2 OR activity >= 15",
        q_error(truth, est, table.nrows())
    );
}
