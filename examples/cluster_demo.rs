//! Distributed serving demo: a 3-worker cluster with 2-way replicas,
//! snapshot shipping, scatter/gather, failover, and a live refresh.
//!
//! ```text
//! cargo run --release -p iam-dist --example cluster_demo
//! ```
//!
//! The demo spawns three in-process workers (real TCP on loopback — the
//! same code path the multi-process binary uses), trains one model per
//! table, ships the snapshots, then answers a mixed batch and proves the
//! cluster's answers are bit-identical to single-process inference. It
//! then kills a worker and repeats the batch (failover), and finally
//! refreshes one table's model mid-traffic.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_dist::{ClusterQuery, Coordinator, DistConfig, WorkerConfig, WorkerHandle};

fn train(dataset: Dataset, seed: u64) -> (IamEstimator, Vec<RangeQuery>) {
    let table = dataset.generate(4_000, seed);
    let cfg = IamConfig {
        components: 6,
        hidden: vec![32, 32],
        embed_dim: 6,
        epochs: 1,
        samples: 100,
        seed,
        ..IamConfig::default()
    };
    let est = IamEstimator::fit(&table, cfg);
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), seed ^ 0xAB);
    let queries =
        gen.gen_queries(8).iter().map(|q| q.normalize(table.ncols()).unwrap().0).collect();
    (est, queries)
}

fn main() {
    println!("training per-table models …");
    let (mut wisdm, wisdm_queries) = train(Dataset::Wisdm, 7);
    let (mut twi, twi_queries) = train(Dataset::Twi, 11);

    // --- cluster up: 3 workers, 2 replicas per table -------------------
    let workers: Vec<WorkerHandle> = (0..3)
        .map(|_| WorkerHandle::spawn("127.0.0.1:0", WorkerConfig::default()).expect("bind worker"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.addr).collect();
    println!("workers listening on {addrs:?}");

    let coord = Coordinator::new(addrs, &["wisdm", "twi"], DistConfig::default());
    for t in ["wisdm", "twi"] {
        println!("table {t:?} placed on workers {:?}", coord.placement().replicas(t));
    }

    // --- snapshot shipping: models reach every replica -----------------
    for outcome in coord.deploy_model("wisdm", &mut wisdm, "wisdm-v1").unwrap() {
        println!("ship wisdm → worker {}: {:?}", outcome.worker, outcome.result);
    }
    for outcome in coord.deploy_model("twi", &mut twi, "twi-v1").unwrap() {
        println!("ship twi   → worker {}: {:?}", outcome.worker, outcome.result);
    }

    // --- scatter/gather: a mixed batch, checked against direct inference
    let batch: Vec<ClusterQuery> = wisdm_queries
        .iter()
        .map(|q| ClusterQuery { table: "wisdm".into(), query: q.clone() })
        .chain(twi_queries.iter().map(|q| ClusterQuery { table: "twi".into(), query: q.clone() }))
        .collect();
    let expect: Vec<f64> = wisdm
        .estimate_batch_shared(&wisdm_queries, 1)
        .into_iter()
        .chain(twi.estimate_batch_shared(&twi_queries, 1))
        .collect();
    let got = coord.estimate_batch(&batch);
    for ((cq, g), e) in batch.iter().zip(&got).take(4).zip(&expect) {
        println!("{}: cluster {:?} direct {e:.6}", cq.table, g);
    }
    let exact = got
        .iter()
        .zip(&expect)
        .all(|(g, e)| g.as_ref().map(|v| v.to_bits() == e.to_bits()).unwrap_or(false));
    println!("all {} answers bit-identical to single-process inference: {exact}", got.len());
    assert!(exact);

    // --- failover: kill one replica, the batch still completes ---------
    let mut workers = workers;
    let victim = coord.placement().replicas("wisdm")[0];
    println!("\nkilling worker {victim} …");
    workers.remove(victim).stop();
    let got = coord.estimate_batch(&batch);
    let answered = got.iter().filter(|r| r.is_ok()).count();
    println!("after failover: {answered}/{} answered (replicas cover the loss)", got.len());
    let still_exact = got
        .iter()
        .zip(&expect)
        .filter_map(|(g, e)| g.as_ref().ok().map(|v| v.to_bits() == e.to_bits()))
        .all(|b| b);
    println!("every answered query still bit-identical: {still_exact}");
    assert!(still_exact);

    // --- refresh: retrain and ship; replicas flip atomically -----------
    println!("\nrefreshing wisdm (1 extra epoch) and shipping …");
    let table = Dataset::Wisdm.generate(4_000, 7);
    wisdm.train_epochs(&table, 1);
    for outcome in coord.deploy_model("wisdm", &mut wisdm, "wisdm-v2").unwrap() {
        println!("ship wisdm v2 → worker {}: {:?}", outcome.worker, outcome.result);
    }
    for (wid, v) in coord.versions("wisdm") {
        println!("worker {wid} now serves wisdm version {v:?}");
    }

    coord.shutdown_cluster();
    for w in workers {
        w.stop();
    }
    println!("\ncluster drained; demo done");
}
