//! Quickstart: train IAM on a small synthetic dataset and estimate a few
//! queries against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{
    exact_selectivity, q_error, SelectivityEstimator, WorkloadConfig, WorkloadGenerator,
};

fn main() {
    // 1. Get a table. TWI is two continuous columns (latitude/longitude)
    //    with ~n distinct values each — the "large domain" regime IAM
    //    targets. Swap in your own `iam_data::Table` here.
    let table = Dataset::Twi.generate(20_000, 42);
    println!("dataset: {} rows × {} columns", table.nrows(), table.ncols());

    // 2. Configure IAM. Defaults follow the paper (30 GMM components,
    //    reduction threshold 1000, ResMADE 256/128/128/256); `small()` is a
    //    fast profile for demos.
    let cfg = IamConfig { epochs: 5, samples: 512, ..IamConfig::small() };

    // 3. Train. GMMs are fitted per continuous column and refined jointly
    //    with the AR model (Eq. 6 of the paper).
    let t0 = std::time::Instant::now();
    let mut iam = IamEstimator::fit(&table, cfg);
    println!(
        "trained in {:.1}s — model size {:.1} KB, final loss {:.3}",
        t0.elapsed().as_secs_f64(),
        iam.model_size_bytes() as f64 / 1024.0,
        iam.stats.last().map(|s| s.total()).unwrap_or(f64::NAN),
    );

    // 4. Estimate. Queries are conjunctions of range predicates; the
    //    harness computes exact selectivities for comparison.
    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 7);
    println!("\n{:<44} {:>10} {:>10} {:>8}", "query", "actual", "estimate", "q-error");
    for q in gen.gen_queries(8) {
        let truth = exact_selectivity(&table, &q);
        let (rq, _) = q.normalize(table.ncols()).expect("valid query");
        let est = iam.estimate(&rq);
        let desc: Vec<String> = q
            .predicates
            .iter()
            .map(|p| format!("c{}{}{:.1}", p.col, op_str(p.op), p.value))
            .collect();
        println!(
            "{:<44} {:>10.5} {:>10.5} {:>8.2}",
            desc.join(" AND "),
            truth,
            est,
            q_error(truth, est, table.nrows())
        );
    }
}

fn op_str(op: iam_data::Op) -> &'static str {
    match op {
        iam_data::Op::Eq => "=",
        iam_data::Op::Ne => "!=",
        iam_data::Op::Lt => "<",
        iam_data::Op::Le => "<=",
        iam_data::Op::Gt => ">",
        iam_data::Op::Ge => ">=",
    }
}
