//! End-to-end demo of the `iam-serve` estimation service.
//!
//! Trains two model versions on WISDM-like sensor data, starts the service,
//! drives it from concurrent client threads (with repeated queries so the
//! cache earns its keep), hot-swaps to the second version mid-traffic,
//! exercises the TCP line protocol, and prints the final metrics.
//!
//! Run with: `cargo run --release --example serve_demo -p iam-serve`

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{RangeQuery, WorkloadConfig, WorkloadGenerator};
use iam_serve::{ServeConfig, Service, TcpFrontend};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Duration;

const CLIENT_THREADS: usize = 8;
const POOL: usize = 60; // distinct queries; clients revisit them → cache hits
const REQUESTS_PER_ROUND: usize = 150;

fn train(label: &str, epochs: usize, seed: u64, table: &iam_data::Table) -> IamEstimator {
    println!("training {label} ({epochs} epochs, seed {seed}) …");
    let cfg = IamConfig {
        components: 8,
        hidden: vec![48, 48],
        embed_dim: 8,
        epochs,
        samples: 200,
        seed,
        ..IamConfig::small()
    };
    IamEstimator::fit(table, cfg)
}

fn main() {
    let table = Dataset::Wisdm.generate(20_000, 42);
    let ncols = table.ncols();
    let v1 = train("v1", 2, 7, &table);
    let v2 = train("v2", 4, 8, &table);

    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 99);
    let pool: Vec<RangeQuery> =
        gen.gen_queries(POOL).iter().map(|q| q.normalize(ncols).unwrap().0).collect();

    let service = Service::start(
        v1,
        "wisdm-v1",
        ServeConfig {
            workers: 2,
            max_batch: 16,
            flush_interval: Duration::from_millis(2),
            inner_threads: 2,
            ..ServeConfig::default()
        },
    );
    println!("service up, version {:?}", service.current_version());

    // two rounds of traffic from CLIENT_THREADS concurrent clients, with a
    // model hot-swap on the barrier between them
    let barrier = Barrier::new(CLIENT_THREADS + 1);
    std::thread::scope(|s| {
        for t in 0..CLIENT_THREADS {
            let client = service.client();
            let pool = &pool;
            let barrier = &barrier;
            s.spawn(move || {
                for round in 0..2 {
                    for i in 0..REQUESTS_PER_ROUND {
                        // stride differently per thread so identical queries
                        // collide across threads (cache + in-batch dedupe)
                        let q = &pool[(i * (t + 1) + round) % pool.len()];
                        match client.estimate(q) {
                            Ok(sel) => debug_assert!((0.0..=1.0).contains(&sel)),
                            Err(e) => println!("thread {t}: {e}"),
                        }
                    }
                    barrier.wait(); // round done
                    barrier.wait(); // wait for the swap (main thread)
                }
            });
        }
        // main: swap between rounds, while traffic threads are parked
        barrier.wait();
        let mid = service.metrics();
        println!(
            "round 1 done on v1: {} requests, mean batch {:.2}, hit rate {:.1}%",
            mid.requests,
            mid.mean_batch,
            100.0 * mid.cache_hit_rate()
        );
        let id = service.swap_model(v2, "wisdm-v2");
        println!("hot-swapped to version {id} mid-traffic");
        barrier.wait();
        // round 2 runs against v2 …
        barrier.wait();
        barrier.wait();
    });

    // the TCP front-end speaks the same protocol over a socket
    let frontend = TcpFrontend::spawn(service.client(), "127.0.0.1:0").expect("bind TCP");
    println!("\nTCP front-end on {}", frontend.addr);
    let stream = TcpStream::connect(frontend.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send = |line: &str| {
        let mut w = &stream;
        writeln!(w, "{line}").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        println!("  → {line}\n  ← {}", reply.trim_end());
    };
    send("VERSION");
    send("0=1 2=*..0.0");
    send("0=1 2=*..0.0"); // second time: served from cache, same bits
    send("not-a-query");
    {
        let mut w = &stream;
        writeln!(w, "QUIT").expect("send");
    }
    frontend.stop();

    let snap = service.shutdown();
    println!("\nfinal metrics\n-------------\n{}", snap.render());

    // the properties this demo exists to show
    assert!(snap.max_batch > 1, "no micro-batching happened (max batch 1)");
    assert!(snap.cache_hit_rate() > 0.0, "cache never hit");
    assert_eq!(snap.timeouts, 0, "requests timed out");
    assert!(snap.model_swaps >= 1, "no hot swap recorded");
    println!(
        "OK: coalesced up to {} requests/batch (mean {:.2}), cache hit rate {:.1}%, {} swap(s)",
        snap.max_batch,
        snap.mean_batch,
        100.0 * snap.cache_hit_rate(),
        snap.model_swaps
    );
}
