//! Observability demo: train a small IAM model with full instrumentation
//! on, estimate a workload, and dump every signal `iam-obs` collects:
//!
//! - `target/obs/trace.jsonl` — per-epoch `train.epoch` events (AR
//!   cross-entropy, GMM NLL, rows/s), per-query `infer.query` events
//!   (samples drawn, dead samples, estimate), and a final
//!   `registry.snapshot` line.
//! - `target/obs/metrics.prom` — Prometheus text exposition of the global
//!   registry (training/inference counters, histograms, span timings).
//! - `target/obs/spans.folded` — folded stacks for `flamegraph.pl` or
//!   speedscope.
//!
//! ```sh
//! cargo run --release --example obs_demo
//! ```
//!
//! The demo ends by cross-checking the three outputs against each other:
//! trace events, the Prometheus dump, and the in-process counters must all
//! tell the same story.

use iam_core::{IamConfig, IamEstimator};
use iam_data::synth::Dataset;
use iam_data::{SelectivityEstimator, WorkloadConfig, WorkloadGenerator};

const EPOCHS: usize = 3;
const QUERIES: usize = 16;
const SAMPLES: usize = 256;

fn main() {
    let out = std::path::Path::new("target/obs");
    std::fs::create_dir_all(out).expect("create target/obs");
    iam_obs::span::enable();
    iam_obs::trace::install_file(out.join("trace.jsonl")).expect("open trace sink");

    let table = Dataset::Twi.generate(10_000, 42);
    let cfg = IamConfig { epochs: EPOCHS, samples: SAMPLES, ..IamConfig::small() };
    let mut iam = IamEstimator::fit(&table, cfg);

    let mut gen = WorkloadGenerator::new(&table, WorkloadConfig::default(), 7);
    for q in gen.gen_queries(QUERIES) {
        let (rq, _) = q.normalize(table.ncols()).expect("valid query");
        let _ = iam.estimate(&rq);
    }

    // close the trace with a full registry snapshot, then dump the other views
    iam_obs::trace::snapshot_registry(iam_obs::Registry::global());
    iam_obs::trace::uninstall();
    let prom = iam_obs::Registry::global().render_prometheus();
    std::fs::write(out.join("metrics.prom"), &prom).expect("write metrics.prom");
    std::fs::write(out.join("spans.folded"), iam_obs::span::folded_stacks())
        .expect("write spans.folded");

    // cross-check: the trace, the Prometheus dump, and the live counters
    // must agree on how many epochs ran and how many queries were estimated
    let trace = std::fs::read_to_string(out.join("trace.jsonl")).expect("read trace back");
    let epoch_events = trace.lines().filter(|l| l.contains("\"event\":\"train.epoch\"")).count();
    let query_events = trace.lines().filter(|l| l.contains("\"event\":\"infer.query\"")).count();
    let snapshots = trace.lines().filter(|l| l.contains("\"event\":\"registry.snapshot\"")).count();
    assert_eq!(epoch_events, EPOCHS, "one train.epoch event per epoch");
    assert_eq!(query_events, QUERIES, "one infer.query event per estimated query");
    assert_eq!(snapshots, 1);
    assert!(
        trace.contains("\"ar_loss\":") && trace.contains("\"gmm_loss\":"),
        "per-epoch losses missing from the trace"
    );

    let prom_sample = |series: &str| -> u64 {
        prom.lines()
            .find_map(|l| l.strip_prefix(series).and_then(|r| r.strip_prefix(' ')))
            .unwrap_or_else(|| panic!("{series} missing from metrics.prom"))
            .parse()
            .expect("integer sample")
    };
    assert_eq!(prom_sample("iam_train_epochs_total") as usize, EPOCHS);
    assert_eq!(prom_sample("iam_infer_queries_total") as usize, QUERIES);
    assert_eq!(prom_sample("iam_infer_samples_total") as usize, QUERIES * SAMPLES);

    println!("wrote {}/trace.jsonl ({} lines)", out.display(), trace.lines().count());
    println!("wrote {}/metrics.prom ({} samples)", out.display(), prom.lines().count());
    println!("epochs traced: {epoch_events}, queries traced: {query_events}");
    println!("per-phase wall time:");
    for (path, agg) in iam_obs::span::report() {
        println!("  {:>10}µs total {:>6} calls  {}", agg.total_us, agg.count, path);
    }
    println!("all expositions consistent ✓");
}
