//! End-to-end query optimization (paper §6.4 / Figure 5): plug different
//! estimators into a Selinger-style optimizer and execute the chosen plans.
//!
//! ```sh
//! cargo run --release --example optimizer_endtoend
//! ```

use iam_core::{neurocard_lite, IamConfig, IamEstimator};
use iam_join::flat::flatten_foj;
use iam_join::imdb::{synthetic_imdb, ImdbConfig};
use iam_join::workload::JoinWorkloadGenerator;
use iam_opt::{
    execute, optimize, ExactCardEstimator, FlatCardEstimator, IndependenceCardEstimator,
    JoinCardEstimator,
};

fn main() {
    let star = synthetic_imdb(&ImdbConfig { movies: 4000, seed: 31 });
    let (flat, schema) = flatten_foj(&star, 12_000, 32);
    let cfg = IamConfig { epochs: 5, samples: 256, factorize_threshold: 256, ..IamConfig::small() };
    println!("training IAM + Neurocard-style ablation on the FOJ sample...");
    let iam = IamEstimator::fit(&flat, cfg.clone());
    let nc = IamEstimator::fit(&flat, neurocard_lite(cfg));

    let mut arms: Vec<(&str, Box<dyn JoinCardEstimator>)> = vec![
        ("exact", Box::new(ExactCardEstimator::new(&star))),
        ("Postgres", Box::new(IndependenceCardEstimator::new(&star))),
        ("Neurocard", Box::new(FlatCardEstimator::new(nc, schema.clone()))),
        ("IAM", Box::new(FlatCardEstimator::new(iam, schema))),
    ];

    let mut gen = JoinWorkloadGenerator::new(&star, 33);
    let queries = gen.gen_queries(30);

    println!("\n{:<12} {:>14} {:>14}", "estimator", "work (tuples)", "exec time (s)");
    for (name, est) in arms.iter_mut() {
        let mut work = 0u64;
        let mut secs = 0.0f64;
        for q in &queries {
            let plan = optimize(q, est.as_mut());
            let rep = execute(&star, q, &plan);
            work += rep.intermediate_tuples;
            secs += rep.seconds;
        }
        println!("{name:<12} {work:>14} {secs:>14.3}");
    }
    println!("\n(better estimates → better join orders → less intermediate work)");
}
