//! Spatial workload demo: rectangle (bounding-box) queries over a
//! tweet-like lat/lon dataset — the use-case from the paper's introduction
//! ("find POIs in a spatial range").
//!
//! Compares IAM with its own Neurocard-style ablation (no GMM reduction)
//! on the same architecture, showing the domain-reduction effect.
//!
//! ```sh
//! cargo run --release --example spatial_twi
//! ```

use iam_core::{neurocard_lite, IamConfig, IamEstimator};
use iam_data::query::{Op, Predicate, Query};
use iam_data::synth::Dataset;
use iam_data::{exact_selectivity, q_error, ErrorSummary, SelectivityEstimator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let table = Dataset::Twi.generate(30_000, 7);
    println!("TWI-like dataset: {} rows (lat/lon)", table.nrows());

    let cfg = IamConfig { epochs: 6, samples: 512, factorize_threshold: 256, ..IamConfig::small() };
    println!("training IAM (GMM-reduced domains)...");
    let mut iam = IamEstimator::fit(&table, cfg.clone());
    println!("training Neurocard-style ablation (factorised domains)...");
    let mut nc = IamEstimator::fit(&table, neurocard_lite(cfg));

    // rectangle queries: lat/lon windows of random position and size
    let mut rng = StdRng::seed_from_u64(99);
    let mut make_box = || -> Query {
        let lat0 = 25.0 + rng.random::<f64>() * 20.0;
        let lon0 = -124.0 + rng.random::<f64>() * 50.0;
        let h = 0.5 + rng.random::<f64>() * 6.0;
        let w = 0.5 + rng.random::<f64>() * 8.0;
        Query::new(vec![
            Predicate { col: 0, op: Op::Ge, value: lat0 },
            Predicate { col: 0, op: Op::Le, value: lat0 + h },
            Predicate { col: 1, op: Op::Ge, value: lon0 },
            Predicate { col: 1, op: Op::Le, value: lon0 + w },
        ])
    };

    let queries: Vec<Query> = (0..60).map(|_| make_box()).collect();
    let mut errs_iam = Vec::new();
    let mut errs_nc = Vec::new();
    for q in &queries {
        let truth = exact_selectivity(&table, q);
        let (rq, _) = q.normalize(2).expect("valid");
        errs_iam.push(q_error(truth, iam.estimate(&rq), table.nrows()));
        errs_nc.push(q_error(truth, nc.estimate(&rq), table.nrows()));
    }

    println!("\nbounding-box workload ({} queries):", queries.len());
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Estimator", "Mean", "Median", "95th", "99th", "Max"
    );
    println!("{}", ErrorSummary::from_errors(&errs_iam).unwrap().table_row("IAM"));
    println!("{}", ErrorSummary::from_errors(&errs_nc).unwrap().table_row("Neurocard"));
    println!(
        "\nmodel sizes: IAM {:.1} KB vs Neurocard {:.1} KB",
        iam.model_size_bytes() as f64 / 1024.0,
        nc.model_size_bytes() as f64 / 1024.0
    );
}
