//! Join cardinality estimation on the synthetic IMDB star schema
//! (NeuroCard-style full-outer-join training, paper §2.2/§3).
//!
//! ```sh
//! cargo run --release --example join_imdb
//! ```

use iam_core::{IamConfig, IamEstimator};
use iam_join::flat::{exact_card, flatten_foj, FlatJoinEstimator};
use iam_join::imdb::{synthetic_imdb, ImdbConfig};
use iam_join::workload::JoinWorkloadGenerator;

fn main() {
    // 1. Schema: title + 5 dimension tables joined on movie_id
    let star = synthetic_imdb(&ImdbConfig { movies: 4000, seed: 21 });
    println!("synthetic IMDB:");
    println!("  title: {} rows", star.hub.nrows());
    for d in &star.dims {
        println!("  {}: {} rows", d.table.name, d.table.nrows());
    }
    println!("  |full outer join| = {:.3e}", star.foj_size());

    // 2. Sample the full outer join (Exact-Weight) and train IAM on the
    //    flat sample — continuous columns GMM-reduced, large categoricals
    //    factorised, per-table presence indicators included.
    let (flat, schema) = flatten_foj(&star, 15_000, 22);
    println!(
        "\ntraining IAM on a {}-row FOJ sample ({} flat columns)...",
        flat.nrows(),
        flat.ncols()
    );
    let cfg = IamConfig { epochs: 6, samples: 512, factorize_threshold: 256, ..IamConfig::small() };
    let iam = IamEstimator::fit(&flat, cfg);
    let mut est = FlatJoinEstimator::new(iam, schema);

    // 3. JOB-light-style join queries with exact ground truth
    let mut gen = JoinWorkloadGenerator::new(&star, 23);
    println!("\n{:<28} {:>12} {:>12} {:>8}", "join graph + preds", "actual", "estimate", "q-err");
    for q in gen.gen_queries(10) {
        let truth = exact_card(&star, &q);
        let got = est.estimate_card(&q);
        let tables: Vec<&str> = q
            .join_dims
            .iter()
            .enumerate()
            .filter(|&(_, &j)| j)
            .map(|(t, _)| star.dims[t].table.name.as_str())
            .collect();
        let qe = (truth.max(1.0) / got.max(1.0)).max(got.max(1.0) / truth.max(1.0));
        println!(
            "{:<28} {truth:>12.0} {got:>12.0} {qe:>8.2}",
            format!("title+{} ({}p)", tables.len(), q.num_predicates()),
        );
    }
}
