#!/usr/bin/env python3
"""Extract the printed tables from bench_output.txt and append them to
EXPERIMENTS.md as the measured-results appendix."""
import re, sys

bench = open('bench_output.txt').read()
blocks = re.findall(r'(=== .+? ===\n(?:.+\n)+?)(?=\n|\Z)', bench)
out = ["\n---\n\n## Appendix: measured output of the final bench run\n"]
for b in blocks:
    title = b.splitlines()[0].strip('= ').strip()
    out.append(f"\n### {title}\n\n```text\n{b.strip()}\n```\n")
md = open('EXPERIMENTS.md').read()
marker = "## Appendix: measured output of the final bench run"
if marker in md:
    md = md[:md.index("\n---\n\n" + marker)]
open('EXPERIMENTS.md', 'w').write(md + "".join(out))
print(f"injected {len(blocks)} blocks")
